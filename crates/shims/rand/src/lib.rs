//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The execution environment has no access to a crates.io mirror, so the
//! workspace vendors the surface it needs: [`rngs::StdRng`] (xoshiro256**
//! seeded via SplitMix64 — *not* the upstream ChaCha12, but every consumer in
//! this repository only requires determinism given a seed, not upstream
//! bit-compatibility), the [`Rng`]/[`SeedableRng`] traits with `gen`,
//! `gen_range` and `gen_bool`, uniform sampling over primitive ranges, and
//! `seq::SliceRandom::shuffle`.

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from explicit seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampleable uniformly from the generator's full output range.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// The user-facing convenience trait (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (xoshiro256** core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

pub mod distributions {
    pub mod uniform {
        use crate::RngCore;

        /// Marker for primitives with a uniform range sampler.
        pub trait SampleUniform: Sized {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self;
        }

        /// Ranges that can drive a single uniform sample.
        pub trait SampleRange<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_in(rng, self.start, self.end, false)
            }
        }

        impl<T: SampleUniform + Clone> SampleRange<T> for std::ops::RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_in(rng, self.start().clone(), self.end().clone(), true)
            }
        }

        /// Uniform draw from `[0, span)` via 128-bit widening multiply.
        fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
            debug_assert!(span > 0);
            ((rng.next_u64() as u128 * span as u128) >> 64) as u64
        }

        macro_rules! impl_uniform_int {
            ($($t:ty => $wide:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                        let (lo_w, hi_w) = (lo as $wide, hi as $wide);
                        let span = hi_w - lo_w + if inclusive { 1 } else { 0 };
                        assert!(span > 0, "empty sample range");
                        if span > u64::MAX as $wide {
                            // Full-width range: any value works.
                            return <$t>::sample_wrap(rng);
                        }
                        (lo_w + below(rng, span as u64) as $wide) as $t
                    }
                }
                impl SampleWrap for $t {
                    fn sample_wrap<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                        rng.next_u64() as $t
                    }
                }
            )*};
        }

        trait SampleWrap: Sized {
            fn sample_wrap<R: RngCore + ?Sized>(rng: &mut R) -> Self;
        }

        impl_uniform_int!(
            u8 => i128, u16 => i128, u32 => i128, u64 => i128, usize => i128,
            i8 => i128, i16 => i128, i32 => i128, i64 => i128, isize => i128
        );

        macro_rules! impl_uniform_float {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
                        assert!(hi >= lo, "empty sample range");
                        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                        lo + (unit as $t) * (hi - lo)
                    }
                }
            )*};
        }

        impl_uniform_float!(f32, f64);
    }
}

pub mod seq {
    use crate::distributions::uniform::{SampleRange, SampleUniform};
    use crate::RngCore;

    /// Slice shuffling (mirrors `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_single(rng);
                self.swap(i, j);
            }
        }
    }

    // Silence unused-import lints when the module is used solely for shuffle.
    #[allow(unused)]
    fn _assert_bounds<T: SampleUniform>() {}
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = r.gen_range(0..10);
            assert!(x < 10);
            let y: i64 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range_and_nondegenerate() {
        let mut r = StdRng::seed_from_u64(2);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
            lo |= u < 0.5;
            hi |= u >= 0.5;
        }
        assert!(lo && hi);
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle should not be identity");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }
}
