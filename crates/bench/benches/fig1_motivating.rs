//! **Figure 1** — the motivating example: a 2-join IMDB query with an
//! expensive UDF filter. Prints both plans with intermediate cardinalities
//! and the push-down vs pull-up runtimes, then lets a (small) trained
//! GRACEFUL advisor make the call.

use graceful_bench::announce;
use graceful_card::{ActualCard, CardEstimator};
use graceful_common::config::ScaleConfig;
use graceful_core::advisor::{PullUpAdvisor, Strategy};
use graceful_core::corpus::build_corpus;
use graceful_core::experiments::train_graceful;
use graceful_core::featurize::Featurizer;
use graceful_exec::Session;
use graceful_plan::querygen::JoinStep;
use graceful_plan::{build_plan, AggFunc, ColRef, Pred, QuerySpec, UdfPlacement, UdfUsage};
use graceful_storage::datagen::{generate, schema};
use graceful_storage::Value;
use graceful_udf::ast::CmpOp;
use graceful_udf::{parse_udf, print_udf, GeneratedUdf};
use std::sync::Arc;

/// The paper's example UDF: branchy, loop-heavy keyword scoring.
const UDF_SRC: &str = "\
def udf(movie_id, keyword_id):
    z = keyword_id * 1.0
    if keyword_id < 600:
        z = z + math.sqrt(movie_id)
    else:
        for i in range(60):
            z = z + math.pow(math.sqrt(keyword_id + 1), 2) / (abs(movie_id) + 1)
    return z
";

fn main() {
    let cfg = announce("Figure 1: pull-up optimization on a SQL query with a UDF");
    let db = generate(&schema("imdb"), cfg.data_scale, cfg.seed);
    let udf_def = parse_udf(UDF_SRC).expect("example UDF parses");
    println!("UDF source:\n{}", print_udf(&udf_def));
    let udf = Arc::new(GeneratedUdf {
        source: print_udf(&udf_def),
        def: udf_def,
        table: "movie_keyword".into(),
        input_columns: vec!["movie_id".into(), "keyword_id".into()],
        adaptations: vec![],
    });
    // SELECT COUNT(*) FROM movie_keyword mk JOIN title t ON mk.movie_id=t.id
    // JOIN movie_info_idx mi ON t.id=mi.movie_id
    // WHERE t.series_years = <mcv> AND udf(mk.movie_id, mk.keyword_id) <= L
    let series_mcv = db
        .stats("title")
        .unwrap()
        .column("series_years")
        .unwrap()
        .mcv
        .first()
        .map(|(v, _)| v.clone())
        .unwrap_or(Value::Text("1987-1997".into()));
    let spec = QuerySpec {
        id: 1,
        database: db.name.clone(),
        base_table: "movie_keyword".into(),
        joins: vec![
            JoinStep {
                table: "title".into(),
                left_col: ColRef::new("movie_keyword", "movie_id"),
                right_col: ColRef::new("title", "id"),
            },
            JoinStep {
                table: "movie_info_idx".into(),
                left_col: ColRef::new("title", "id"),
                right_col: ColRef::new("movie_info_idx", "movie_id"),
            },
        ],
        filters: vec![Pred::new("title", "series_years", CmpOp::Eq, series_mcv)],
        udf: Some(udf),
        udf_usage: UdfUsage::Filter,
        udf_filter_op: CmpOp::Le,
        udf_filter_literal: 26026.0,
        target_udf_selectivity: 0.6,
        agg: AggFunc::CountStar,
        agg_col: None,
    };
    let exec = Session::from_env().expect("valid GRACEFUL_* configuration").executor(&db);
    let mut pd = build_plan(&spec, UdfPlacement::PushDown).unwrap();
    let mut pu = build_plan(&spec, UdfPlacement::PullUp).unwrap();
    let pd_run = exec.run_and_annotate(&mut pd, 1).unwrap();
    let pu_run = exec.run_and_annotate(&mut pu, 1).unwrap();
    println!("--- push-down plan (DBMS default) ---");
    println!("{}", pd.explain());
    println!(
        "runtime: {:.4}s (UDF applied to {} rows)\n",
        pd_run.runtime_s(),
        pd_run.udf_input_rows
    );
    println!("--- pull-up plan ---");
    println!("{}", pu.explain());
    println!(
        "runtime: {:.4}s (UDF applied to {} rows)\n",
        pu_run.runtime_s(),
        pu_run.udf_input_rows
    );
    let speedup = pd_run.runtime_ns / pu_run.runtime_ns;
    println!("pull-up speedup: {speedup:.1}x (paper's example: 21.86s -> 0.48s ≈ 45x)\n");

    // Let a quickly trained advisor decide (trained on two other datasets).
    let train_cfg = ScaleConfig {
        data_scale: (cfg.data_scale * 0.5).max(0.02),
        queries_per_db: cfg.queries_per_db.min(40),
        epochs: cfg.epochs.min(12),
        hidden: cfg.hidden.min(24),
        ..cfg
    };
    let train = vec![
        build_corpus("tpc_h", &train_cfg, 3).unwrap(),
        build_corpus("ssb", &train_cfg, 4).unwrap(),
    ];
    let model = train_graceful(&train, &train_cfg, Featurizer::full());
    let est = ActualCard::new(&db);
    let advisor = PullUpAdvisor::new(&model);
    let decision = advisor
        .decide(&db, &spec, &est as &dyn CardEstimator, Strategy::AreaUnderCurve, None)
        .expect("advisor decides");
    println!(
        "GRACEFUL advisor (AuC): {}",
        if decision.pull_up { "Pull-Up!" } else { "keep push-down" }
    );
    println!("cost curves (selectivity -> predicted cost):");
    for ((s, up), (_, down)) in decision.pullup_costs.iter().zip(&decision.pushdown_costs) {
        println!("  sel {s:.1}: pull-up {up:>14.0} ns   push-down {down:>14.0} ns");
    }
    let correct = decision.pull_up == (pu_run.runtime_ns < pd_run.runtime_ns);
    println!("\ndecision matches ground truth: {correct}");
}
