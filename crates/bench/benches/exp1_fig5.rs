//! Exp 1 / **Figure 5** — per-dataset Q-errors (median / p95 / p99) under the
//! four cardinality annotation methods, every dataset evaluated zero-shot.

use graceful_bench::{announce, corpora, rule};
use graceful_core::experiments::{cross_validate, evaluate_model, summarize, EstimatorKind};
use graceful_core::featurize::Featurizer;

fn main() {
    let cfg = announce("Exp 1 / Figure 5: per-dataset Q-errors (leave-out cross-validation)");
    let all = corpora(&cfg);
    let folds = cross_validate(&all, &cfg, Featurizer::full());

    println!(
        "{:<12} | {:^24} | {:^24} | {:^24} | {:^24}",
        "dataset", "Actual (med/p95/p99)", "DeepDB-like", "WanderJoin-like", "DuckDB-like"
    );
    rule(124);
    let mut per_kind_medians = vec![Vec::new(); EstimatorKind::ALL.len()];
    for fold in &folds {
        for &t in &fold.test_indices {
            let mut cells = Vec::new();
            for (k, kind) in EstimatorKind::ALL.iter().enumerate() {
                let recs = evaluate_model(&fold.model, &all[t], *kind, 7);
                let s = summarize(&recs, |r| r.has_udf);
                per_kind_medians[k].push(s.median);
                cells.push(graceful_bench::fmt_q(&s));
            }
            println!(
                "{:<12} | {} | {} | {} | {}",
                all[t].name, cells[0], cells[1], cells[2], cells[3]
            );
        }
    }
    rule(124);
    for (k, kind) in EstimatorKind::ALL.iter().enumerate() {
        let meds = &per_kind_medians[k];
        let avg = meds.iter().sum::<f64>() / meds.len().max(1) as f64;
        println!("{:<18} mean-of-medians {:.2}", kind.label(), avg);
    }
    println!(
        "\npaper shape check: medians below ~1.5 for Actual/DeepDB-like on most datasets; \
         airline/baseball are the hardest with estimated cards"
    );
}
