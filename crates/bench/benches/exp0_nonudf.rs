//! Section VI setup claim — accuracy on **non-UDF queries**: the paper
//! reports a median Q-error of 1.21 and p95 of 2.02 when <10% non-UDF
//! queries are mixed into training.

use graceful_bench::{announce, corpora, fmt_q, rule};
use graceful_core::experiments::{cross_validate, evaluate_model, summarize, EstimatorKind};
use graceful_core::featurize::Featurizer;

fn main() {
    let cfg = announce("Exp 0: accuracy on non-UDF queries (Section VI setup)");
    let all = corpora(&cfg);
    let folds = cross_validate(&all, &cfg, Featurizer::full());
    let mut recs = Vec::new();
    for fold in &folds {
        for &t in &fold.test_indices {
            recs.extend(evaluate_model(&fold.model, &all[t], EstimatorKind::Actual, 2));
        }
    }
    let non_udf = summarize(&recs, |r| !r.has_udf);
    let udf = summarize(&recs, |r| r.has_udf);
    println!("{:<24} | {:^22}", "query class", "Q-error (med/p95/p99)");
    rule(52);
    println!("{:<24} | {}", format!("non-UDF (n={})", non_udf.count), fmt_q(&non_udf));
    println!("{:<24} | {}", format!("UDF (n={})", udf.count), fmt_q(&udf));
    rule(52);
    println!("\npaper reference: non-UDF median 1.21 / p95 2.02");
}
