//! Exp 2 / **Figure 6** — Q-error robustness across UDF complexity:
//! (A) graph size (COMP-node count), (B) number of branches, (C) number of
//! loops; GRACEFUL with actual vs DeepDB-like cardinalities.

use graceful_bench::{announce, corpora, fmt_q, rule};
use graceful_core::experiments::{cross_validate, evaluate_model, summarize, EstimatorKind};
use graceful_core::featurize::Featurizer;

const SIZE_BINS: [(usize, usize, &str); 5] =
    [(0, 6, "0-6"), (6, 12, "6-12"), (12, 24, "12-24"), (24, 40, "24-40"), (40, 100, "40-100")];

fn main() {
    let cfg = announce("Exp 2 / Figure 6: robustness across UDF complexities");
    let all = corpora(&cfg);
    let folds = cross_validate(&all, &cfg, Featurizer::full());
    let mut actual = Vec::new();
    let mut deepdb = Vec::new();
    for fold in &folds {
        for &t in &fold.test_indices {
            actual.extend(evaluate_model(&fold.model, &all[t], EstimatorKind::Actual, 3));
            deepdb.extend(evaluate_model(&fold.model, &all[t], EstimatorKind::DataDriven, 3));
        }
    }

    // (A) graph size.
    println!("\n(A) Graph size (number of COMP nodes)");
    println!("{:<10} | {:^22} | {:^22}", "bin", "Actual (med/p95/p99)", "DeepDB-like");
    rule(62);
    for (lo, hi, label) in SIZE_BINS {
        let a = summarize(&actual, |r| r.has_udf && r.comp_nodes >= lo && r.comp_nodes < hi);
        let d = summarize(&deepdb, |r| r.has_udf && r.comp_nodes >= lo && r.comp_nodes < hi);
        println!("{label:<10} | {} | {}", fmt_q(&a), fmt_q(&d));
    }

    // (B) branches, (C) loops.
    let branch_bins: Vec<(String, usize)> = (0..=3).map(|b| (b.to_string(), b)).collect();
    println!("\n(B) Number of branches");
    println!("{:<10} | {:^22} | {:^22}", "branches", "Actual (med/p95/p99)", "DeepDB-like");
    rule(62);
    for (label, b) in &branch_bins {
        let a = summarize(&actual, |r| r.has_udf && r.branches == *b);
        let d = summarize(&deepdb, |r| r.has_udf && r.branches == *b);
        println!("{label:<10} | {} | {}", fmt_q(&a), fmt_q(&d));
    }
    println!("\n(C) Number of loops");
    println!("{:<10} | {:^22} | {:^22}", "loops", "Actual (med/p95/p99)", "DeepDB-like");
    rule(62);
    for (label, b) in &branch_bins {
        let a = summarize(&actual, |r| r.has_udf && r.loops == *b);
        let d = summarize(&deepdb, |r| r.has_udf && r.loops == *b);
        println!("{label:<10} | {} | {}", fmt_q(&a), fmt_q(&d));
    }
    println!(
        "\npaper shape check: Actual-card medians stay flat across bins; DeepDB-like errors \
         grow with branch count (hit-ratio estimation gets harder)"
    );
}
