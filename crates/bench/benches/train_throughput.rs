//! Training-step shoot-out: the batched level-synchronous GNN trainer vs
//! the kept node-at-a-time reference, over a real featurized corpus.
//!
//! For every mini-batch size both modes run the identical step sequence
//! (same graphs, same order, same seeds); the bench asserts per-step losses
//! and final parameters are **bit-identical**, then reports training-step
//! throughput (graphs/s). The machine-readable record (overwriting any
//! previous one) goes to `BENCH_train.json` at the repo root.
//!
//! Corpus-shape knobs apply as everywhere (`GRACEFUL_SCALE`,
//! `GRACEFUL_QUERIES_PER_DB`, `GRACEFUL_HIDDEN`, `GRACEFUL_SEED`);
//! featurization threads follow `GRACEFUL_THREADS` via `Pool::from_env`.
//! The step counts themselves are fixed (`PASSES` passes over the corpus
//! per mode × batch size) so the two modes always time identical work.

use graceful_bench::announce;
use graceful_core::corpus::{build_corpus, DatasetCorpus};
use graceful_core::featurize::Featurizer;
use graceful_core::model::{GracefulModel, TrainOptions};
use graceful_nn::{GnnExecMode, TypedGraph};
use graceful_runtime::Pool;
use std::time::Instant;

const DATASETS: [&str; 2] = ["tpc_h", "imdb"];
const BATCH_SIZES: [usize; 3] = [1, 8, 32];
const PASSES: usize = 3;

struct ModeRun {
    seconds: f64,
    steps: usize,
    graphs: usize,
    losses: Vec<f32>,
    checksum: u64,
}

fn run_mode(
    samples: &[(TypedGraph, f64)],
    cfg: &graceful_common::config::ScaleConfig,
    exec: GnnExecMode,
    batch: usize,
) -> ModeRun {
    let mut model = GracefulModel::new(Featurizer::full(), cfg.hidden, cfg.seed)
        .expect("valid GNN architecture");
    // Pure defaults for the optimizer/loss knobs; the exec mode and batch
    // size are this bench's own axes.
    let tcfg = TrainOptions::new().seed(cfg.seed).build().expect("valid options");
    // Train over fixed-order mini-batches via the public per-step API so
    // both modes see the identical step sequence.
    let gnn = model.gnn_mut();
    let targets: Vec<f64> = samples.iter().map(|(_, t)| *t).collect();
    gnn.fit_target_norm(&targets).expect("non-empty corpus");
    let mut losses = Vec::new();
    let mut steps = 0usize;
    let mut graphs = 0usize;
    let started = Instant::now();
    for _ in 0..PASSES {
        for chunk in samples.chunks(batch) {
            let gs: Vec<&TypedGraph> = chunk.iter().map(|(g, _)| g).collect();
            let ts: Vec<f64> = chunk.iter().map(|(_, t)| *t).collect();
            let loss = gnn
                .train_batch_in(exec, &gs, &ts, &tcfg.adam, tcfg.huber_delta)
                .expect("training step succeeds");
            losses.push(loss);
            steps += 1;
            graphs += gs.len();
        }
    }
    let seconds = started.elapsed().as_secs_f64();
    ModeRun { seconds, steps, graphs, losses, checksum: model.param_checksum() }
}

fn main() {
    let cfg = announce("train_throughput: batched vs node-at-a-time GNN trainer");
    let corpora: Vec<DatasetCorpus> = DATASETS
        .iter()
        .enumerate()
        .map(|(i, name)| build_corpus(name, &cfg, cfg.seed + i as u64).expect("corpus builds"))
        .collect();
    let refs: Vec<&DatasetCorpus> = corpora.iter().collect();
    let probe = GracefulModel::new(Featurizer::full(), cfg.hidden, cfg.seed)
        .expect("valid GNN architecture");
    let samples =
        probe.featurize_corpora(&Pool::from_env(), &refs).expect("featurization succeeds");
    let total_nodes: usize = samples.iter().map(|(g, _)| g.len()).sum();
    println!(
        "corpus: {} graphs / {} nodes over {} databases, hidden {}\n",
        samples.len(),
        total_nodes,
        corpora.len(),
        cfg.hidden
    );

    let mut json_rows = Vec::new();
    for batch in BATCH_SIZES {
        let reference = run_mode(&samples, &cfg, GnnExecMode::NodeAtATime, batch);
        let batched = run_mode(&samples, &cfg, GnnExecMode::Batched, batch);
        assert_eq!(reference.losses.len(), batched.losses.len());
        for (i, (a, b)) in reference.losses.iter().zip(&batched.losses).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "loss diverged at step {i} (batch {batch})");
        }
        assert_eq!(reference.checksum, batched.checksum, "parameters diverged (batch {batch})");
        let speedup = reference.seconds / batched.seconds.max(1e-9);
        println!(
            "batch {batch:>3}: reference {:>8.1} graphs/s vs batched {:>8.1} graphs/s \
             ({speedup:.2}x, {} steps bit-identical)",
            reference.graphs as f64 / reference.seconds.max(1e-9),
            batched.graphs as f64 / batched.seconds.max(1e-9),
            reference.steps,
        );
        for (mode, r) in [("node-at-a-time", &reference), ("batched", &batched)] {
            json_rows.push(format!(
                "{{\"mode\":\"{mode}\",\"batch_size\":{batch},\"seconds\":{:.4},\
                 \"steps\":{},\"graphs\":{},\"graphs_per_s\":{:.2},\"steps_per_s\":{:.2}}}",
                r.seconds,
                r.steps,
                r.graphs,
                r.graphs as f64 / r.seconds.max(1e-9),
                r.steps as f64 / r.seconds.max(1e-9),
            ));
        }
    }

    let json = format!(
        "{{\"bench\":\"train_throughput\",\"seed\":{},\"data_scale\":{},\
         \"queries_per_db\":{},\"hidden\":{},\"n_graphs\":{},\"results\":[{}]}}\n",
        cfg.seed,
        cfg.data_scale,
        cfg.queries_per_db,
        cfg.hidden,
        samples.len(),
        json_rows.join(",")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_train.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}
