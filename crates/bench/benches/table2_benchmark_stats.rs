//! **Table II** — statistics of the generated benchmark: query counts by UDF
//! usage, database count, total labelled runtime, and the complexity ranges
//! of queries and UDFs.

use graceful_bench::{announce, corpora, rule};
use graceful_core::corpus::benchmark_stats;

fn main() {
    let cfg = announce("Table II: statistics of the created benchmark");
    let all = corpora(&cfg);
    let s = benchmark_stats(&all);
    rule(72);
    println!("{:<38} {}", "Number of Queries", s.n_queries);
    println!(
        "{:<38} {} w/ UDFs in filters, {} w/ UDFs in projection, {} non-UDF",
        "", s.n_udf_filter, s.n_udf_projection, s.n_non_udf
    );
    println!("{:<38} {}", "Number of Databases", s.n_databases);
    println!("{:<38} {:.3} hours (simulated)", "Total Runtime Of Benchmark", s.total_runtime_hours);
    println!("{:<38} 0-{} joins, 0-{} filters", "Query Complexity", s.max_joins, s.max_filters);
    println!("{:<38} 0-{}", "UDF: Number of Branches", s.max_branches);
    println!("{:<38} 0-{}", "UDF: Number of Loops", s.max_loops);
    println!("{:<38} {}-{}", "UDF: Number of Arithmetic/String Ops", s.min_ops, s.max_ops);
    println!("{:<38} math, numpy", "UDF: Supported Libraries");
    println!("{:<38} 0.0001-1.0 (log-uniform target)", "UDF: Filter Selectivity");
    rule(72);
    println!(
        "\npaper reference: 93.8k queries (72k filter / 21k projection), 20 databases, \
         142h, 1-5 joins, 0-21 filters, 0-3 branches, 0-3 loops, 10-150 ops"
    );
}
