//! Exp 3 / **Table IV** — graph-based vs flat UDF representation on a
//! select-only workload (`SELECT udf(col) FROM table WHERE filter`), where
//! UDF cost dominates and representation quality is isolated.

use graceful_bench::{announce, fmt_q, rule};
use graceful_core::baselines::FlatGraphBaseline;
use graceful_core::corpus::{build_corpus_with, DatasetCorpus};
use graceful_core::experiments::{evaluate_flat, evaluate_model, summarize, EstimatorKind};
use graceful_core::featurize::Featurizer;
use graceful_plan::{QueryGenConfig, QueryGenerator};
use graceful_storage::datagen::DATASET_NAMES;
use graceful_udf::UdfGenerator;

fn select_only_generator() -> QueryGenerator {
    QueryGenerator::new(
        QueryGenConfig {
            join_weights: [1.0, 0.0, 0.0, 0.0, 0.0, 0.0], // no joins
            udf_prob: 1.0,
            udf_filter_prob: 0.6,
            max_filters_per_table: 2,
            ..QueryGenConfig::default()
        },
        UdfGenerator::default(),
    )
}

fn main() {
    let cfg = announce("Exp 3 / Table IV: UDF representations on a select-only workload");
    // Build select-only corpora for all datasets.
    let mut corpora: Vec<DatasetCorpus> = Vec::new();
    for (i, name) in DATASET_NAMES.iter().enumerate() {
        let seed = cfg.seed.wrapping_add(i as u64 * 37);
        corpora.push(
            build_corpus_with(name, &cfg, seed, select_only_generator())
                .expect("select-only corpus builds"),
        );
    }
    let n: usize = corpora.iter().map(|c| c.queries.len()).sum();
    println!("built {n} select-only queries over {} datasets\n", corpora.len());
    // Train on all but the last dataset; test zero-shot on the held-out one
    // (rotating over `folds` held-out datasets).
    let hold_outs = cfg.folds.clamp(1, corpora.len());
    let mut g_actual = Vec::new();
    let mut g_deepdb = Vec::new();
    let mut f_actual = Vec::new();
    let mut f_deepdb = Vec::new();
    for h in 0..hold_outs {
        let test_idx = corpora.len() - 1 - h;
        let train_refs: Vec<&DatasetCorpus> =
            corpora.iter().enumerate().filter(|(i, _)| *i != test_idx).map(|(_, c)| c).collect();
        let mut model =
            graceful_core::GracefulModel::new(Featurizer::full(), cfg.hidden, cfg.seed + h as u64)
                .expect("valid GNN architecture");
        model
            .train(
                &train_refs,
                &graceful_core::model::TrainOptions::new()
                    .epochs(cfg.epochs)
                    .seed(cfg.seed)
                    .build_with_env()
                    .expect("invalid GRACEFUL_* configuration"),
            )
            .expect("training succeeds");
        let flat = FlatGraphBaseline::train(&train_refs, cfg.epochs, cfg.hidden, cfg.seed + 5)
            .expect("flat baseline trains");
        let test = &corpora[test_idx];
        g_actual.extend(evaluate_model(&model, test, EstimatorKind::Actual, 1));
        g_deepdb.extend(evaluate_model(&model, test, EstimatorKind::DataDriven, 1));
        f_actual.extend(evaluate_flat(&flat, test, EstimatorKind::Actual, 1));
        f_deepdb.extend(evaluate_flat(&flat, test, EstimatorKind::DataDriven, 1));
    }

    println!("{:<12} {:<14} | {:^22}", "Model", "Card. Est.", "Q-error (med/p95/p99)");
    rule(54);
    println!(
        "{:<12} {:<14} | {}",
        "GRACEFUL",
        "Actual",
        fmt_q(&summarize(&g_actual, |r| r.has_udf))
    );
    println!(
        "{:<12} {:<14} | {}",
        "GRACEFUL",
        "DeepDB-like",
        fmt_q(&summarize(&g_deepdb, |r| r.has_udf))
    );
    println!(
        "{:<12} {:<14} | {}",
        "FlatVector",
        "Actual",
        fmt_q(&summarize(&f_actual, |r| r.has_udf))
    );
    println!(
        "{:<12} {:<14} | {}",
        "FlatVector",
        "DeepDB-like",
        fmt_q(&summarize(&f_deepdb, |r| r.has_udf))
    );
    rule(54);
    println!(
        "\npaper shape reference: in the paper GRACEFUL (1.29/1.37) beats FlatVector \
         (1.89/2.01) under actual/DeepDB cards. At this reduced corpus size the GBDT-based \
         FlatVector is more sample-efficient and can lead; the gap closes as \
         GRACEFUL_QUERIES_PER_DB and GRACEFUL_EPOCHS grow."
    );
}
