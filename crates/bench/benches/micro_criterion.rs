//! Criterion micro-benchmarks (engineering, not a paper artifact):
//! executor throughput, UDF interpretation, GNN inference latency — the
//! pieces whose performance bounds how fast the corpus and the experiments
//! can be regenerated.

use criterion::{criterion_group, criterion_main, Criterion};
use graceful_card::{ActualCard, CardEstimator};
use graceful_common::config::ScaleConfig;
use graceful_common::rng::Rng;
use graceful_core::corpus::build_corpus;
use graceful_core::experiments::train_graceful;
use graceful_core::featurize::Featurizer;
use graceful_exec::Session;
use graceful_storage::datagen::{generate, schema};
use graceful_storage::Value;
use graceful_udf::{parse_udf, Interpreter};
use std::hint::black_box;

fn bench_interpreter(c: &mut Criterion) {
    let udf = parse_udf(
        "def f(x, y):\n    z = x * 1.5\n    if x < 50:\n        z = z + math.sqrt(y)\n    else:\n        for i in range(20):\n            z = z + np.log(y + 1) * 0.5\n    return z\n",
    )
    .unwrap();
    let mut interp = Interpreter::default();
    c.bench_function("udf_interpret_row", |b| {
        let mut x = 0i64;
        b.iter(|| {
            x = (x + 7) % 100;
            let out = interp.eval(&udf, &[Value::Int(black_box(x)), Value::Float(2.5)]).unwrap();
            black_box(out.cost.total)
        })
    });
}

fn bench_executor(c: &mut Criterion) {
    let db = generate(&schema("tpc_h"), 0.2, 3);
    use graceful_plan::{AggFunc, ColRef, Plan, PlanOp, PlanOpKind};
    let plan = Plan {
        ops: vec![
            PlanOp::new(PlanOpKind::Scan { table: "orders_t".into() }, vec![]),
            PlanOp::new(PlanOpKind::Scan { table: "customer_t".into() }, vec![]),
            PlanOp::new(
                PlanOpKind::Join {
                    left_col: ColRef::new("orders_t", "cust_id"),
                    right_col: ColRef::new("customer_t", "id"),
                },
                vec![0, 1],
            ),
            PlanOp::new(PlanOpKind::Agg { func: AggFunc::CountStar, column: None }, vec![2]),
        ],
        root: 3,
    };
    let exec = Session::from_env().expect("valid GRACEFUL_* configuration").executor(&db);
    c.bench_function("executor_fk_join", |b| {
        b.iter(|| black_box(exec.run(&plan, 1).unwrap().runtime_ns))
    });
}

fn bench_inference(c: &mut Criterion) {
    let cfg = ScaleConfig {
        data_scale: 0.05,
        queries_per_db: 24,
        epochs: 4,
        hidden: 32,
        ..ScaleConfig::default()
    };
    let corpus = build_corpus("imdb", &cfg, 5).unwrap();
    let model = train_graceful(std::slice::from_ref(&corpus), &cfg, Featurizer::full());
    let est = ActualCard::new(&corpus.db);
    let q = corpus.queries.iter().find(|q| q.has_udf()).unwrap();
    let mut plan = q.plan.clone();
    est.annotate(&mut plan).unwrap();
    let graph = model.graph_for(&corpus.db, &q.spec, &plan, &est).unwrap();
    c.bench_function("gnn_inference", |b| {
        b.iter(|| black_box(model.predict_graph(&graph).unwrap()))
    });
    c.bench_function("featurize_and_predict", |b| {
        b.iter(|| {
            let g = model.graph_for(&corpus.db, &q.spec, &plan, &est).unwrap();
            black_box(model.predict_graph(&g).unwrap())
        })
    });
    let mut rng = Rng::seed(1);
    c.bench_function("rng_overhead_floor", |b| b.iter(|| black_box(rng.next_u64())));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_interpreter, bench_executor, bench_inference
}
criterion_main!(benches);
