//! Observability overhead: what do profiling, tracing and the
//! estimator-quality telemetry cost, and — the number that matters — what
//! does *disabled* instrumentation cost?
//!
//! Five arms run the same UDF-heavy plan corpus, interleaved within every
//! repetition so thermal / cache drift hits all arms equally:
//!
//! * `off_a`    — observability disabled (first baseline arm),
//! * `profile`  — per-operator [`ExecProfile`] collection on,
//! * `trace`    — profiling *and* span recording on,
//! * `qerror`   — profiling over *annotated* plans with the flight recorder
//!   on: every run scores per-op q-errors into the registry histograms and
//!   appends one JSONL flight record,
//! * `off_b`    — observability disabled again (second baseline arm).
//!
//! `disabled_overhead_pct` compares the two baseline arms: with every span
//! site compiled in but recording off, the A/A difference is the noise
//! floor, and the acceptance bar is that it stays under 2%. The profile and
//! trace arms report their (real, expected-nonzero) cost next to it.
//!
//! Per-arm medians across repetitions go to stdout and to `BENCH_obs.json`
//! at the repo root (overwritten). Scale knobs apply as everywhere
//! (`GRACEFUL_SCALE`, `GRACEFUL_QUERIES_PER_DB`, `GRACEFUL_THREADS`, …).

use graceful_bench::announce;
use graceful_card::{CardEstimator, NaiveCard};
use graceful_common::rng::Rng;
use graceful_exec::{ExecOptions, Session};
use graceful_obs::{flight, trace};
use graceful_plan::{build_plan, Plan, QueryGenerator};
use graceful_storage::datagen::{generate, schema};
use graceful_storage::Database;
use graceful_udf::generator::apply_adaptations;
use std::time::Instant;

const REPS: usize = 7;

fn udf_plans(cfg: &graceful_common::config::ScaleConfig) -> (Database, Vec<(Plan, u64)>) {
    let mut db = generate(&schema("tpc_h"), cfg.data_scale, cfg.seed);
    let g = QueryGenerator::default();
    let mut rng = Rng::seed(cfg.seed ^ 0x0B5);
    let mut plans = Vec::new();
    let mut id = 0u64;
    while plans.len() < cfg.queries_per_db && id < cfg.queries_per_db as u64 * 8 {
        id += 1;
        let Ok(spec) = g.generate(&db, id, &mut rng) else { continue };
        if spec.udf.is_none() {
            continue; // UDF evaluation is where the instrumentation lives
        }
        if let Some(u) = &spec.udf {
            if apply_adaptations(&mut db, &u.adaptations).is_err() {
                continue;
            }
        }
        for placement in graceful_plan::valid_placements(&spec) {
            if let Ok(plan) = build_plan(&spec, placement) {
                plans.push((plan, spec.id));
            }
        }
    }
    (db, plans)
}

fn session(profile: bool) -> Session {
    ExecOptions::new().profile(profile).build_with_env().expect("valid GRACEFUL_* configuration")
}

/// One timed pass of every plan under `session`; returns seconds.
fn pass(session: &Session, db: &Database, plans: &[(Plan, u64)]) -> f64 {
    let exec = session.executor(db);
    let started = Instant::now();
    for (plan, seed) in plans {
        let run = exec.run(plan, *seed).expect("plan executes");
        std::hint::black_box(run.runtime_ns);
    }
    started.elapsed().as_secs_f64()
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let cfg = announce(
        "obs_overhead: cost of profiling, tracing, q-error recording, and disabled instrumentation",
    );
    let (db, plans) = udf_plans(&cfg);
    println!("corpus: {} UDF plans, {REPS} interleaved repetitions\n", plans.len());
    assert!(!plans.is_empty(), "no UDF plans generated at this scale");

    let off = session(false);
    let profiled = session(true);
    // The q-error arm scores estimates, so it needs annotated plans (the
    // engine ignores annotations — execution is identical either way).
    let estimator = NaiveCard::new(&db);
    let annotated: Vec<(Plan, u64)> = plans
        .iter()
        .map(|(plan, seed)| {
            let mut p = plan.clone();
            estimator.annotate(&mut p).expect("naive estimator annotates");
            (p, *seed)
        })
        .collect();
    // Warm-up pass so allocator and cache state is steady before rep 0.
    pass(&off, &db, &plans);

    let (mut off_a, mut prof, mut traced, mut qerr, mut off_b) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for _ in 0..REPS {
        off_a.push(pass(&off, &db, &plans));
        prof.push(pass(&profiled, &db, &plans));
        trace::enable();
        traced.push(pass(&profiled, &db, &plans));
        trace::disable();
        trace::clear(); // keep the event buffers from growing across reps
        flight::enable();
        qerr.push(pass(&profiled, &db, &annotated));
        flight::disable();
        flight::clear(); // keep the record buffer from growing across reps
        off_b.push(pass(&off, &db, &plans));
    }

    let (m_off_a, m_prof, m_traced, m_qerr, m_off_b) = (
        median(&mut off_a),
        median(&mut prof),
        median(&mut traced),
        median(&mut qerr),
        median(&mut off_b),
    );
    let pct = |arm: f64| (arm - m_off_a) / m_off_a.max(1e-12) * 100.0;
    let disabled_overhead_pct = pct(m_off_b);
    let profile_overhead_pct = pct(m_prof);
    let trace_overhead_pct = pct(m_traced);
    let qerror_overhead_pct = pct(m_qerr);

    println!("median seconds per pass ({} plans):", plans.len());
    println!("  off (A)         {m_off_a:.4}s");
    println!("  profile         {m_prof:.4}s  ({profile_overhead_pct:+.2}%)");
    println!("  profile+trace   {m_traced:.4}s  ({trace_overhead_pct:+.2}%)");
    println!("  profile+qerror  {m_qerr:.4}s  ({qerror_overhead_pct:+.2}%)  <- histograms + flight records");
    println!("  off (B)         {m_off_b:.4}s  ({disabled_overhead_pct:+.2}%)  <- disabled overhead (A/A)");

    let json = format!(
        "{{\"bench\":\"obs_overhead\",\"seed\":{},\"data_scale\":{},\"plans\":{},\"reps\":{REPS},\
         \"median_s\":{{\"off_a\":{m_off_a:.6},\"profile\":{m_prof:.6},\
         \"trace\":{m_traced:.6},\"qerror\":{m_qerr:.6},\"off_b\":{m_off_b:.6}}},\
         \"profile_overhead_pct\":{profile_overhead_pct:.3},\
         \"trace_overhead_pct\":{trace_overhead_pct:.3},\
         \"qerror_overhead_pct\":{qerror_overhead_pct:.3},\
         \"disabled_overhead_pct\":{disabled_overhead_pct:.3}}}\n",
        cfg.seed,
        cfg.data_scale,
        plans.len(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}
