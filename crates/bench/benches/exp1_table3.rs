//! Exp 1 / **Table III** — cost-estimation Q-errors across unseen databases,
//! by cardinality-annotation method and UDF position, plus the Flat+Graph
//! and Graph+Graph baselines and the top-node cardinality estimation error.

use graceful_bench::{announce, corpora, fmt_q, rule};
use graceful_common::metrics::{percentile, QErrorSummary};
use graceful_core::baselines::{FlatGraphBaseline, GraphGraphBaseline};
use graceful_core::corpus::DatasetCorpus;
use graceful_core::experiments::{
    cross_validate, evaluate_flat, evaluate_graphgraph, evaluate_model, summarize, EstimatorKind,
    EvalRecord,
};
use graceful_core::featurize::Featurizer;

fn row(label: &str, card: &str, recs: &[EvalRecord]) {
    let overall = summarize(recs, |r| r.has_udf);
    let pull = summarize(recs, |r| r.has_udf && r.position == "Pull-Up");
    let inter = summarize(recs, |r| r.has_udf && r.position == "Intermediate");
    let push = summarize(recs, |r| r.has_udf && r.position == "Push-Down");
    let cards: Vec<f64> = recs.iter().filter(|r| r.has_udf).map(|r| r.card_q_top).collect();
    let card_str = if cards.is_empty() {
        "     -       -".to_string()
    } else {
        format!("{:>6.2} {:>7.2}", percentile(&cards, 0.5), percentile(&cards, 0.95))
    };
    println!(
        "{label:<13} {card:<16} | {} | {} | {} | {} | {card_str}",
        fmt_q(&overall),
        fmt_q(&pull),
        fmt_q(&inter),
        fmt_q(&push)
    );
}

fn main() {
    let cfg = announce("Exp 1 / Table III: Q-errors across unseen databases");
    let all = corpora(&cfg);
    let folds = cross_validate(&all, &cfg, Featurizer::full());

    // Collect records per (model/baseline, estimator) across folds.
    let kinds = EstimatorKind::ALL;
    let mut graceful_recs: Vec<Vec<EvalRecord>> = vec![Vec::new(); kinds.len()];
    let mut flat_recs: Vec<EvalRecord> = Vec::new();
    let mut gg_recs: Vec<EvalRecord> = Vec::new();
    for (f, fold) in folds.iter().enumerate() {
        // Train the split baselines on the same training partition.
        let train: Vec<&DatasetCorpus> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| !fold.test_indices.contains(i))
            .map(|(_, c)| c)
            .collect();
        let train_ref: Vec<&DatasetCorpus> =
            if train.is_empty() { all.iter().collect() } else { train };
        let flat = FlatGraphBaseline::train(&train_ref, cfg.epochs, cfg.hidden, cfg.seed + 51)
            .expect("flat baseline trains");
        let gg = GraphGraphBaseline::train(&train_ref, cfg.epochs, cfg.hidden, cfg.seed + 52)
            .expect("graph+graph baseline trains");
        for &t in &fold.test_indices {
            for (k, kind) in kinds.iter().enumerate() {
                graceful_recs[k].extend(evaluate_model(&fold.model, &all[t], *kind, f as u64));
            }
            flat_recs.extend(evaluate_flat(&flat, &all[t], EstimatorKind::Actual, f as u64));
            gg_recs.extend(evaluate_graphgraph(&gg, &all[t], EstimatorKind::Actual, f as u64));
        }
    }

    println!(
        "{:<13} {:<16} | {:^22} | {:^22} | {:^22} | {:^22} | {:^14}",
        "Model",
        "Card. Est.",
        "Overall (med/p95/p99)",
        "Pull-Up",
        "Intermediate",
        "Push-Down",
        "CardEst err"
    );
    rule(150);
    row("GRACEFUL", "Actual", &graceful_recs[0]);
    row("Flat+Graph", "Actual", &flat_recs);
    row("Graph+Graph", "Actual", &gg_recs);
    row("GRACEFUL", "DeepDB-like", &graceful_recs[1]);
    row("GRACEFUL", "WanderJoin-like", &graceful_recs[2]);
    row("GRACEFUL", "DuckDB-like", &graceful_recs[3]);
    rule(150);
    println!(
        "\nmeasured medians: GRACEFUL(Actual) {:.2}, Flat+Graph {:.2}, Graph+Graph {:.2}.",
        summarize(&graceful_recs[0], |r| r.has_udf).median,
        summarize(&flat_recs, |r| r.has_udf).median,
        summarize(&gg_recs, |r| r.has_udf).median,
    );
    println!(
        "paper shape checks: (a) estimated-card medians and tails degrade monotonically \
         Actual -> DeepDB-like -> WanderJoin-like -> DuckDB-like, with DuckDB-like's top-node \
         card error exploding; (b) GRACEFUL(Actual) <= Graph+Graph. \
         NOTE: at the default reduced corpus (~10^3 queries vs the paper's ~10^5) the GBDT-based \
         Flat+Graph is more sample-efficient than any GNN and can lead overall — raise \
         GRACEFUL_QUERIES_PER_DB/GRACEFUL_EPOCHS to recover the paper's ordering."
    );
    let _ = QErrorSummary::average; // silence potential unused warnings at tiny scales
}
