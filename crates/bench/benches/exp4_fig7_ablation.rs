//! Exp 4 / **Figure 7** — feature ablation with actual cardinalities,
//! evaluated on the held-out `genome` dataset:
//!
//! (1) RET node only → (2) + LOOP/COMP/BRANCH/INV → (3) + on-udf filter flag
//! → (4) + LOOP_END → (5) + residual LOOP edge.

use graceful_bench::{announce, corpora, fmt_q, rule};
use graceful_core::corpus::DatasetCorpus;
use graceful_core::experiments::{evaluate_model, summarize, EstimatorKind};
use graceful_core::featurize::Featurizer;
use graceful_core::model::TrainOptions;
use graceful_core::GracefulModel;

const LABELS: [&str; 5] = [
    "(1) RET nodes only",
    "(2) + LOOP, COMP, BRANCH, INV",
    "(3) + FILTER on-udf feature",
    "(4) + LOOP_END",
    "(5) + residual LOOP edge",
];

fn main() {
    let cfg = announce("Exp 4 / Figure 7: feature ablation (actual cards, genome held out)");
    let all = corpora(&cfg);
    let genome_idx = all.iter().position(|c| c.name == "genome").expect("genome exists");
    let train: Vec<&DatasetCorpus> =
        all.iter().enumerate().filter(|(i, _)| *i != genome_idx).map(|(_, c)| c).collect();
    let test = &all[genome_idx];

    println!("{:<32} | {:^22}", "variant", "Q-error (med/p95/p99)");
    rule(60);
    let mut medians = Vec::new();
    for level in 1..=5u8 {
        let mut model = GracefulModel::new(Featurizer::level(level), cfg.hidden, cfg.seed)
            .expect("valid GNN architecture");
        model
            .train(
                &train,
                &TrainOptions::new()
                    .epochs(cfg.epochs)
                    .seed(cfg.seed)
                    .build_with_env()
                    .expect("invalid GRACEFUL_* configuration"),
            )
            .expect("training succeeds");
        let recs = evaluate_model(&model, test, EstimatorKind::Actual, 1);
        let s = summarize(&recs, |r| r.has_udf);
        medians.push(s.median);
        println!("{:<32} | {}", LABELS[(level - 1) as usize], fmt_q(&s));
    }
    rule(60);
    println!(
        "\npaper shape check: median error decreases monotonically from (1) {:.2} to (5) {:.2} \
         (paper: 2.05 -> 1.13)",
        medians[0], medians[4]
    );
}
