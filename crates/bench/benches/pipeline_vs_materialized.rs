//! Engine-level shoot-out: the streaming physical-operator pipeline vs the
//! materializing reference executor, over a generated query corpus.
//!
//! For every generated query (all valid UDF placements) and every UDF
//! backend, both executor modes run the identical plan; the bench
//! asserts the `QueryRun`s are **bit-identical**, then reports
//! throughput (plans/s, accounted Mrows/s of scan input) and the peak
//! intermediate-row footprint of each mode. The machine-readable record
//! (overwriting any previous one) goes to `BENCH_pipeline.json` at the repo
//! root — the perf trajectory's first end-to-end engine datapoint.
//!
//! A second section measures the **verified rewrites** on a wide join
//! chain whose payload lanes are provably dead: rewrites on vs off, both
//! modes, bit-identity asserted, with the wall-clock delta recorded under
//! `"case":"dead_column_wide_join"` in the same JSON.
//!
//! Scale knobs apply as everywhere (`GRACEFUL_SCALE`,
//! `GRACEFUL_QUERIES_PER_DB`, …). Thread counts follow `GRACEFUL_THREADS`
//! through the `Session` path.

use graceful_bench::announce;
use graceful_common::config::{ExecMode, ScaleConfig, UdfBackend};
use graceful_common::rng::Rng;
use graceful_exec::{ExecOptions, QueryRun, Session};
use graceful_plan::{
    build_plan, AggFunc, ColRef, Plan, PlanOp, PlanOpKind, QueryGenerator, RewriteSet,
};
use graceful_storage::datagen::{generate, schema};
use graceful_storage::Database;
use graceful_udf::generator::apply_adaptations;
use std::time::Instant;

const DATASETS: [&str; 2] = ["tpc_h", "imdb"];

fn corpus_plans(cfg: &graceful_common::config::ScaleConfig) -> Vec<(Database, Vec<(Plan, u64)>)> {
    DATASETS
        .iter()
        .map(|name| {
            let mut db = generate(&schema(name), cfg.data_scale, cfg.seed);
            let g = QueryGenerator::default();
            let mut rng = Rng::seed(cfg.seed ^ 0xBEEF);
            let mut plans = Vec::new();
            let mut id = 0u64;
            while plans.len() < cfg.queries_per_db && id < cfg.queries_per_db as u64 * 4 {
                id += 1;
                let Ok(spec) = g.generate(&db, id, &mut rng) else { continue };
                if let Some(u) = &spec.udf {
                    if apply_adaptations(&mut db, &u.adaptations).is_err() {
                        continue;
                    }
                }
                for placement in graceful_plan::valid_placements(&spec) {
                    if let Ok(plan) = build_plan(&spec, placement) {
                        plans.push((plan, spec.id));
                    }
                }
            }
            (db, plans)
        })
        .collect()
}

struct ModeStats {
    seconds: f64,
    plans: usize,
    scan_rows: usize,
    peak_rows_max: usize,
    peak_rows_sum: usize,
}

fn run_all(
    session: &Session,
    corpus: &[(Database, Vec<(Plan, u64)>)],
    verify_against: Option<&[QueryRun]>,
) -> (ModeStats, Vec<QueryRun>) {
    let mut runs = Vec::new();
    let mut stats =
        ModeStats { seconds: 0.0, plans: 0, scan_rows: 0, peak_rows_max: 0, peak_rows_sum: 0 };
    let started = Instant::now();
    for (db, plans) in corpus {
        let exec = session.executor(db);
        for (plan, seed) in plans {
            let run = exec.run(plan, *seed).expect("plan executes");
            stats.plans += 1;
            stats.scan_rows += plan
                .tables()
                .iter()
                .map(|t| db.table(t).map(graceful_storage::Table::num_rows).unwrap_or(0))
                .sum::<usize>();
            stats.peak_rows_max = stats.peak_rows_max.max(run.peak_inter_rows);
            stats.peak_rows_sum += run.peak_inter_rows;
            runs.push(run);
        }
    }
    stats.seconds = started.elapsed().as_secs_f64();
    if let Some(reference) = verify_against {
        assert_eq!(runs.len(), reference.len());
        for (a, b) in runs.iter().zip(reference.iter()) {
            assert_eq!(a.runtime_ns.to_bits(), b.runtime_ns.to_bits(), "runtimes diverged");
            assert_eq!(a.agg_value.to_bits(), b.agg_value.to_bits(), "answers diverged");
            assert_eq!(a.out_rows, b.out_rows, "cardinalities diverged");
        }
    }
    (stats, runs)
}

/// Dead-column-pruning case: a three-table join chain
/// (`lineitem ⋈ orders ⋈ customer`) whose aggregate reads only the
/// lineitem side, so liveness analysis proves every payload lane of both
/// hash builds dead — the verified rewrite stores zero-width build tuples
/// and one-lane probe output instead of the full three-lane tuples.
/// Measures rewrites on vs off in both executor modes, asserting the
/// contracted `QueryRun` fields stay bit-identical (the verified-rewrite
/// guarantee), and reports the wall-clock and peak-footprint deltas.
fn dead_column_case(cfg: &ScaleConfig, json_rows: &mut Vec<String>) {
    let db = generate(&schema("tpc_h"), cfg.data_scale, cfg.seed);
    let plan = Plan {
        ops: vec![
            PlanOp::new(PlanOpKind::Scan { table: "customer_t".into() }, vec![]),
            PlanOp::new(PlanOpKind::Scan { table: "orders_t".into() }, vec![]),
            PlanOp::new(
                PlanOpKind::Join {
                    left_col: ColRef::new("orders_t", "cust_id"),
                    right_col: ColRef::new("customer_t", "id"),
                },
                vec![1, 0],
            ),
            PlanOp::new(PlanOpKind::Scan { table: "lineitem_t".into() }, vec![]),
            PlanOp::new(
                PlanOpKind::Join {
                    left_col: ColRef::new("lineitem_t", "order_id"),
                    right_col: ColRef::new("orders_t", "id"),
                },
                vec![3, 2],
            ),
            PlanOp::new(
                PlanOpKind::Agg {
                    func: AggFunc::Sum,
                    column: Some(ColRef::new("lineitem_t", "price")),
                },
                vec![4],
            ),
        ],
        root: 5,
    };
    // The pruning must actually fire, or the case measures nothing.
    let rw = RewriteSet::analyze(&plan, &db);
    assert!(
        !rw.live_above[4].contains("orders_t") && !rw.live_above[4].contains("customer_t"),
        "only lineitem_t is read above the top join"
    );
    assert!(!rw.live_above[2].contains("customer_t"), "customer_t payload is dead");

    let iters = (cfg.queries_per_db / 4).max(64) as u64;
    println!(
        "\ndead-column case: lineitem ⋈ orders ⋈ customer, agg reads lineitem only ({iters} iters)"
    );
    for mode in [ExecMode::Materialize, ExecMode::Pipeline] {
        let mut timed = Vec::new();
        for rewrites in [false, true] {
            let session = ExecOptions::new()
                .mode(mode)
                .rewrites(rewrites)
                .build_with_env()
                .expect("valid GRACEFUL_* configuration");
            let exec = session.executor(&db);
            exec.run(&plan, cfg.seed).expect("warmup executes");
            let started = Instant::now();
            let mut last = None;
            for _ in 0..iters {
                last = Some(exec.run(&plan, cfg.seed).expect("plan executes"));
            }
            timed.push((started.elapsed().as_secs_f64(), last.expect("at least one iter")));
        }
        let (off_s, off) = &timed[0];
        let (on_s, on) = &timed[1];
        assert_eq!(on.runtime_ns.to_bits(), off.runtime_ns.to_bits(), "runtimes diverged");
        assert_eq!(on.agg_value.to_bits(), off.agg_value.to_bits(), "answers diverged");
        assert_eq!(on.out_rows, off.out_rows, "cardinalities diverged");
        println!(
            "{mode:?}: rewrites off {off_s:.2}s vs on {on_s:.2}s ({:.2}x), \
             peak intermediate rows {} vs {}, bit-identical",
            off_s / on_s.max(1e-9),
            off.peak_inter_rows,
            on.peak_inter_rows,
        );
        for (rewrites, s, run) in [("off", off_s, off), ("on", on_s, on)] {
            json_rows.push(format!(
                "{{\"case\":\"dead_column_wide_join\",\"mode\":\"{mode:?}\",\
                 \"rewrites\":\"{rewrites}\",\"seconds\":{s:.4},\"iters\":{iters},\
                 \"plans_per_s\":{:.2},\"peak_inter_rows\":{}}}",
                iters as f64 / s.max(1e-9),
                run.peak_inter_rows,
            ));
        }
    }
}

fn main() {
    let cfg = announce("pipeline_vs_materialized: engine-level executor shoot-out");
    let corpus = corpus_plans(&cfg);
    let n_plans: usize = corpus.iter().map(|(_, p)| p.len()).sum();
    println!("corpus: {} plans over {} databases\n", n_plans, corpus.len());

    let mut json_rows = Vec::new();
    for backend in [UdfBackend::TreeWalk, UdfBackend::Vm, UdfBackend::Simd] {
        let session_for = |mode: ExecMode| {
            ExecOptions::new()
                .udf_backend(backend)
                .mode(mode)
                .build_with_env()
                .expect("valid GRACEFUL_* configuration")
        };
        let (mat, mat_runs) = run_all(&session_for(ExecMode::Materialize), &corpus, None);
        let (pipe, _) = run_all(&session_for(ExecMode::Pipeline), &corpus, Some(&mat_runs));
        let speedup = mat.seconds / pipe.seconds.max(1e-9);
        let peak_ratio = mat.peak_rows_max as f64 / pipe.peak_rows_max.max(1) as f64;
        println!(
            "{backend:?}: materialize {:.2}s vs pipeline {:.2}s ({speedup:.2}x), \
             peak intermediate rows {} vs {} ({peak_ratio:.2}x smaller peak), \
             {} plans bit-identical",
            mat.seconds, pipe.seconds, mat.peak_rows_max, pipe.peak_rows_max, mat.plans
        );
        for (mode, s) in [("materialize", &mat), ("pipeline", &pipe)] {
            json_rows.push(format!(
                "{{\"backend\":\"{backend:?}\",\"mode\":\"{mode}\",\"seconds\":{:.4},\
                 \"plans\":{},\"plans_per_s\":{:.2},\"scan_mrows_per_s\":{:.3},\
                 \"peak_inter_rows_max\":{},\"peak_inter_rows_mean\":{:.1}}}",
                s.seconds,
                s.plans,
                s.plans as f64 / s.seconds.max(1e-9),
                s.scan_rows as f64 / 1e6 / s.seconds.max(1e-9),
                s.peak_rows_max,
                s.peak_rows_sum as f64 / s.plans.max(1) as f64,
            ));
        }
    }

    dead_column_case(&cfg, &mut json_rows);

    let json = format!(
        "{{\"bench\":\"pipeline_vs_materialized\",\"seed\":{},\"data_scale\":{},\
         \"queries_per_db\":{},\"n_plans\":{},\"results\":[{}]}}\n",
        cfg.seed,
        cfg.data_scale,
        cfg.queries_per_db,
        n_plans,
        json_rows.join(",")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}
