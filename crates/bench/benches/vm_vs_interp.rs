//! Microbenchmark: tree-walking interpreter vs bytecode batch VM.
//!
//! Measures per-row UDF evaluation throughput for both execution backends
//! over representative UDF shapes (straight-line arithmetic, branch+loop,
//! string methods) and prints the speedup at several batch sizes. The VM is
//! expected to clear 2× on per-row evaluation at batch sizes ≥ 1024 — the
//! acceptance bar for the bytecode subsystem.
//!
//! Run with `cargo bench --bench vm_vs_interp` (add `--release` semantics
//! automatically; bench profile inherits release).

use graceful_common::rng::Rng;
use graceful_storage::datagen::{generate, schema};
use graceful_storage::Value;
use graceful_udf::generator::apply_adaptations;
use graceful_udf::{compile, parse_udf, Interpreter, UdfGenerator, Vm};
use std::hint::black_box;
use std::time::Instant;

struct Case {
    name: &'static str,
    source: &'static str,
    rows: usize,
    make_args: fn(usize) -> Vec<Value>,
}

const CASES: &[Case] = &[
    Case {
        name: "arith_straightline",
        source: "def f(x, y):\n    z = x * 1.5 + y\n    w = z * z - x / (y + 1)\n    return w + z * 0.25\n",
        rows: 60_000,
        make_args: |i| vec![Value::Int((i % 100) as i64), Value::Float((i % 37) as f64 + 0.5)],
    },
    Case {
        name: "branch_loop",
        source: "def f(x, y):\n    z = 0\n    if x < 50:\n        z = x * 2 + y\n    else:\n        for i in range(12):\n            z = z + math.sqrt(x + i)\n    return z\n",
        rows: 30_000,
        make_args: |i| vec![Value::Int((i % 100) as i64), Value::Int((i % 7) as i64)],
    },
    Case {
        name: "string_methods",
        source: "def f(s, y):\n    t = s.upper()\n    if t.startswith('AB'):\n        return len(t) + y\n    return t.find('X') + y\n",
        rows: 20_000,
        make_args: |i| {
            let s = if i % 3 == 0 { "abcdefgh" } else { "xyzzy prefix" };
            vec![Value::Text(s.to_string()), Value::Int((i % 11) as i64)]
        },
    },
];

fn time_it(mut f: impl FnMut()) -> f64 {
    // One warm-up pass, then best-of-3 timed passes.
    f();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    println!("=== UDF backends: tree-walking interpreter vs bytecode batch VM ===\n");
    let batch_sizes = [1usize, 64, 1024, 4096];
    let mut worst_speedup_1024 = f64::INFINITY;
    for case in CASES {
        let udf = parse_udf(case.source).expect("bench UDF parses");
        let prog = compile(&udf).expect("bench UDF compiles");
        let rows: Vec<Vec<Value>> = (0..case.rows).map(case.make_args).collect();
        // Columnar copy for the batch API.
        let n_params = rows[0].len();
        let cols: Vec<Vec<Value>> =
            (0..n_params).map(|p| rows.iter().map(|r| r[p].clone()).collect()).collect();

        let mut interp = Interpreter::default();
        let tree_s = time_it(|| {
            let mut acc = 0.0;
            for args in &rows {
                acc += interp.eval(&udf, args).unwrap().cost.total;
            }
            black_box(acc);
        });
        let tree_rate = case.rows as f64 / tree_s;
        println!("{:<20} tree-walk: {:>10.0} rows/s", case.name, tree_rate);

        for &batch in &batch_sizes {
            let mut vm = Vm::default();
            let mut out = Vec::with_capacity(batch);
            let vm_s = time_it(|| {
                let mut acc = 0.0;
                let mut start = 0;
                while start < case.rows {
                    let end = (start + batch).min(case.rows);
                    let slices: Vec<&[Value]> = cols.iter().map(|c| &c[start..end]).collect();
                    out.clear();
                    let mut cost = graceful_udf::CostCounter::new();
                    vm.eval_batch(&prog, &slices, &mut out, &mut cost).unwrap();
                    acc += cost.total;
                    start = end;
                }
                black_box(acc);
            });
            let vm_rate = case.rows as f64 / vm_s;
            let speedup = vm_rate / tree_rate;
            println!(
                "{:<20} vm b={:<5} {:>10.0} rows/s   ({speedup:.2}x)",
                case.name, batch, vm_rate
            );
            if batch >= 1024 {
                worst_speedup_1024 = worst_speedup_1024.min(speedup);
            }
        }
        println!();
    }
    println!("worst handcrafted-case VM speedup at batch >= 1024: {worst_speedup_1024:.2}x");
    println!("(string-method UDFs are bound by string allocation, not dispatch)\n");

    // The acceptance measurement: the generator's own corpus mix (the UDF
    // population every experiment runs), evaluated per row by both backends.
    let corpus_speedup = corpus_mix_speedup();
    println!("corpus-mix VM speedup at batch 1024: {corpus_speedup:.2}x (target: >= 2x)");
    if corpus_speedup < 2.0 {
        println!("WARNING: below the 2x acceptance bar");
    }
}

/// Generate a representative batch of corpus UDFs and measure the aggregate
/// per-row evaluation throughput of both backends at batch size 1024.
fn corpus_mix_speedup() -> f64 {
    let mut db = generate(&schema("tpc_h"), 0.05, 3);
    let gen = UdfGenerator::default();
    let mut rng = Rng::seed(42);
    struct GenCase {
        udf: graceful_udf::UdfDef,
        prog: graceful_udf::Program,
        cols: Vec<Vec<Value>>,
        rows: usize,
    }
    let mut cases = Vec::new();
    for _ in 0..12 {
        let u = gen.generate(&db, &mut rng).expect("generator produces UDF");
        apply_adaptations(&mut db, &u.adaptations).expect("adaptations apply");
        let table = db.table(&u.table).expect("udf table exists");
        let rows = table.num_rows().min(4_000);
        let cols: Vec<Vec<Value>> = u
            .input_columns
            .iter()
            .map(|c| {
                let col = table.column(c).expect("input column exists");
                (0..rows).map(|r| col.value(r)).collect()
            })
            .collect();
        let prog = compile(&u.def).expect("corpus UDF compiles");
        cases.push(GenCase { udf: u.def.clone(), prog, cols, rows });
    }
    let total_rows: usize = cases.iter().map(|c| c.rows).sum();

    let mut interp = Interpreter::default();
    let tree_s = time_it(|| {
        let mut acc = 0.0;
        let mut args = Vec::new();
        for case in &cases {
            for r in 0..case.rows {
                args.clear();
                args.extend(case.cols.iter().map(|c| c[r].clone()));
                acc += interp.eval(&case.udf, &args).unwrap().cost.total;
            }
        }
        black_box(acc);
    });

    let mut vm = Vm::default();
    let vm_s = time_it(|| {
        let mut acc = 0.0;
        let mut out = Vec::new();
        for case in &cases {
            let mut start = 0;
            while start < case.rows {
                let end = (start + 1024).min(case.rows);
                let slices: Vec<&[Value]> = case.cols.iter().map(|c| &c[start..end]).collect();
                out.clear();
                let mut cost = graceful_udf::CostCounter::new();
                vm.eval_batch(&case.prog, &slices, &mut out, &mut cost).unwrap();
                acc += cost.total;
                start = end;
            }
        }
        black_box(acc);
    });
    println!(
        "corpus mix ({} UDFs, {total_rows} rows): tree-walk {:>10.0} rows/s, vm {:>10.0} rows/s",
        cases.len(),
        total_rows as f64 / tree_s,
        total_rows as f64 / vm_s,
    );
    tree_s / vm_s
}
