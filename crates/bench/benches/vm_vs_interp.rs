//! Microbenchmark: tree-walking interpreter vs bytecode batch VM vs the
//! typed columnar (SIMD) fast path.
//!
//! Measures per-row UDF evaluation throughput for all three execution paths
//! over representative UDF shapes (straight-line arithmetic, branch+loop,
//! string methods) and prints the speedups at several batch sizes, then
//! writes the machine-readable record (overwriting any previous one) to
//! `BENCH_simd.json` at the repo root.
//!
//! Acceptance bars: VM ≥ 2× the tree-walker on the corpus mix at batch 1024
//! (the bytecode subsystem's bar), the SIMD path ≥ 2× the batch VM on
//! numeric-heavy UDFs at batch ≥ 1024, and — now that trip-count analysis
//! keeps constant-trip `for` loops on the lanes instead of bailing — ≥ 1× on
//! the counted-loop cases. String-method UDFs have no typed lane
//! representation and stay on the scalar path — their SIMD column reports
//! ≈ 1×.
//!
//! Run with `cargo bench --bench vm_vs_interp`.

use graceful_common::rng::Rng;
use graceful_storage::datagen::{generate, schema};
use graceful_storage::Value;
use graceful_udf::generator::apply_adaptations;
use graceful_udf::{compile, parse_udf, simd, CostCounter, Interpreter, UdfGenerator, Vm};
use std::hint::black_box;
use std::time::Instant;

struct Case {
    name: &'static str,
    source: &'static str,
    rows: usize,
    /// Numeric-heavy cases carry the 2× SIMD acceptance bar.
    numeric: bool,
    /// Cases dominated by a constant-trip loop: previously every such row
    /// bailed to the scalar VM; trip-count analysis now keeps them columnar,
    /// and they carry the ≥ 1× counted-loop bar.
    counted: bool,
    make_args: fn(usize) -> Vec<Value>,
}

const CASES: &[Case] = &[
    Case {
        name: "arith_straightline",
        source: "def f(x, y):\n    z = x * 1.5 + y\n    w = z * z - x / (y + 1)\n    return w + z * 0.25\n",
        rows: 60_000,
        numeric: true,
        counted: false,
        make_args: |i| vec![Value::Int((i % 100) as i64), Value::Float((i % 37) as f64 + 0.5)],
    },
    Case {
        name: "numeric_libcalls",
        source: "def f(x, y):\n    w = np.clip(x, 0, 50) + math.sqrt(y)\n    return np.sign(w - 25) * math.log(w + 1) + int(x / 3)\n",
        rows: 40_000,
        numeric: true,
        counted: false,
        make_args: |i| vec![Value::Int((i % 100) as i64), Value::Float((i % 17) as f64 + 0.25)],
    },
    Case {
        name: "branch_loop",
        source: "def f(x, y):\n    z = 0\n    if x < 50:\n        z = x * 2 + y\n    else:\n        for i in range(12):\n            z = z + math.sqrt(x + i)\n    return z\n",
        rows: 30_000,
        // Half the rows divert into the `range(12)` loop — which the
        // trip-count analysis proves constant, so they stay columnar.
        numeric: false,
        counted: true,
        make_args: |i| vec![Value::Int((i % 100) as i64), Value::Int((i % 7) as i64)],
    },
    Case {
        name: "counted_loop",
        source: "def f(x, y):\n    z = 0\n    for i in range(16):\n        z = z + (x + i) * 0.5 + y\n    return z\n",
        rows: 30_000,
        // Every row runs the proven 16-trip loop on the lanes — the case
        // that was 100% scalar fallback before trip-count analysis.
        numeric: false,
        counted: true,
        make_args: |i| vec![Value::Int((i % 100) as i64), Value::Float((i % 13) as f64 + 0.5)],
    },
    Case {
        name: "string_methods",
        source: "def f(s, y):\n    t = s.upper()\n    if t.startswith('AB'):\n        return len(t) + y\n    return t.find('X') + y\n",
        rows: 20_000,
        numeric: false,
        counted: false,
        make_args: |i| {
            let s = if i % 3 == 0 { "abcdefgh" } else { "xyzzy prefix" };
            vec![Value::Text(s.to_string()), Value::Int((i % 11) as i64)]
        },
    },
];

fn time_it(mut f: impl FnMut()) -> f64 {
    // One warm-up pass, then best-of-3 timed passes.
    f();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

struct Row {
    case: &'static str,
    batch: usize,
    tree_rows_s: f64,
    vm_rows_s: f64,
    simd_rows_s: f64,
}

fn main() {
    println!("=== UDF backends: tree-walker vs batch VM vs columnar SIMD ===\n");
    let batch_sizes = [64usize, 1024, 4096];
    let mut rows_out: Vec<Row> = Vec::new();
    let mut worst_numeric_simd_vs_vm_1024 = f64::INFINITY;
    let mut worst_counted_simd_vs_vm_1024 = f64::INFINITY;
    for case in CASES {
        let udf = parse_udf(case.source).expect("bench UDF parses");
        let prog = compile(&udf).expect("bench UDF compiles");
        let shape = prog.simd_shape();
        let rows: Vec<Vec<Value>> = (0..case.rows).map(case.make_args).collect();
        // Columnar copy for the batch APIs.
        let n_params = rows[0].len();
        let cols: Vec<Vec<Value>> =
            (0..n_params).map(|p| rows.iter().map(|r| r[p].clone()).collect()).collect();

        let mut interp = Interpreter::default();
        let tree_s = time_it(|| {
            let mut acc = 0.0;
            for args in &rows {
                acc += interp.eval(&udf, args).unwrap().cost.total;
            }
            black_box(acc);
        });
        let tree_rate = case.rows as f64 / tree_s;
        println!("{:<20} tree-walk: {:>11.0} rows/s", case.name, tree_rate);

        for &batch in &batch_sizes {
            let run_batched = |use_simd: bool| {
                let mut vm = Vm::default();
                let mut out = Vec::with_capacity(batch);
                let mut total = 0.0f64;
                let secs = time_it(|| {
                    let mut acc = 0.0;
                    let mut start = 0;
                    while start < case.rows {
                        let end = (start + batch).min(case.rows);
                        let slices: Vec<&[Value]> = cols.iter().map(|c| &c[start..end]).collect();
                        out.clear();
                        let mut cost = CostCounter::new();
                        if use_simd {
                            simd::eval_batch_values(
                                &mut vm, &prog, &shape, &slices, &mut out, &mut cost,
                            )
                            .unwrap();
                        } else {
                            vm.eval_batch(&prog, &slices, &mut out, &mut cost).unwrap();
                        }
                        acc += cost.total;
                        start = end;
                    }
                    black_box(acc);
                    total = acc;
                });
                (secs, total)
            };
            let (vm_s, vm_total) = run_batched(false);
            let (simd_s, simd_total) = run_batched(true);
            assert_eq!(
                vm_total.to_bits(),
                simd_total.to_bits(),
                "{}: SIMD work total diverged from the VM",
                case.name
            );
            let vm_rate = case.rows as f64 / vm_s;
            let simd_rate = case.rows as f64 / simd_s;
            let simd_vs_vm = simd_rate / vm_rate;
            println!(
                "{:<20} b={:<5} vm {:>11.0} rows/s ({:.2}x tw)   simd {:>11.0} rows/s ({simd_vs_vm:.2}x vm)",
                case.name,
                batch,
                vm_rate,
                vm_rate / tree_rate,
                simd_rate,
            );
            if case.numeric && batch >= 1024 {
                worst_numeric_simd_vs_vm_1024 = worst_numeric_simd_vs_vm_1024.min(simd_vs_vm);
            }
            if case.counted && batch >= 1024 {
                worst_counted_simd_vs_vm_1024 = worst_counted_simd_vs_vm_1024.min(simd_vs_vm);
            }
            rows_out.push(Row {
                case: case.name,
                batch,
                tree_rows_s: tree_rate,
                vm_rows_s: vm_rate,
                simd_rows_s: simd_rate,
            });
        }
        println!();
    }
    println!(
        "worst numeric-heavy SIMD speedup over the batch VM at batch >= 1024: \
         {worst_numeric_simd_vs_vm_1024:.2}x (bar: >= 2x)"
    );
    if worst_numeric_simd_vs_vm_1024 < 2.0 {
        println!("WARNING: below the 2x acceptance bar");
    }
    println!(
        "worst counted-loop SIMD speedup over the batch VM at batch >= 1024: \
         {worst_counted_simd_vs_vm_1024:.2}x (bar: >= 1x)"
    );
    if worst_counted_simd_vs_vm_1024 < 1.0 {
        println!("WARNING: below the 1x counted-loop acceptance bar");
    }

    // The bytecode subsystem's original acceptance measurement: the
    // generator's own corpus mix, tree-walker vs batch VM at batch 1024.
    let corpus_speedup = corpus_mix_speedup();
    println!("\ncorpus-mix VM speedup at batch 1024: {corpus_speedup:.2}x (target: >= 2x)");
    if corpus_speedup < 2.0 {
        println!("WARNING: below the 2x acceptance bar");
    }

    let json_rows: Vec<String> = rows_out
        .iter()
        .map(|r| {
            format!(
                "{{\"case\":\"{}\",\"batch\":{},\"tree_rows_s\":{:.0},\"vm_rows_s\":{:.0},\
                 \"simd_rows_s\":{:.0},\"simd_vs_vm\":{:.4}}}",
                r.case,
                r.batch,
                r.tree_rows_s,
                r.vm_rows_s,
                r.simd_rows_s,
                r.simd_rows_s / r.vm_rows_s
            )
        })
        .collect();
    let json = format!(
        "{{\"bench\":\"vm_vs_interp\",\"worst_numeric_simd_vs_vm_at_1024\":{:.4},\
         \"worst_counted_loop_simd_vs_vm_at_1024\":{:.4},\
         \"corpus_mix_vm_vs_tree_at_1024\":{:.4},\"results\":[{}]}}\n",
        worst_numeric_simd_vs_vm_1024,
        worst_counted_simd_vs_vm_1024,
        corpus_speedup,
        json_rows.join(",")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_simd.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Generate a representative batch of corpus UDFs and measure the aggregate
/// per-row evaluation throughput of tree-walker vs batch VM at batch 1024.
fn corpus_mix_speedup() -> f64 {
    let mut db = generate(&schema("tpc_h"), 0.05, 3);
    let gen = UdfGenerator::default();
    let mut rng = Rng::seed(42);
    struct GenCase {
        udf: graceful_udf::UdfDef,
        prog: graceful_udf::Program,
        cols: Vec<Vec<Value>>,
        rows: usize,
    }
    let mut cases = Vec::new();
    for _ in 0..12 {
        let u = gen.generate(&db, &mut rng).expect("generator produces UDF");
        apply_adaptations(&mut db, &u.adaptations).expect("adaptations apply");
        let table = db.table(&u.table).expect("udf table exists");
        let rows = table.num_rows().min(4_000);
        let cols: Vec<Vec<Value>> = u
            .input_columns
            .iter()
            .map(|c| {
                let col = table.column(c).expect("input column exists");
                (0..rows).map(|r| col.value(r)).collect()
            })
            .collect();
        let prog = compile(&u.def).expect("corpus UDF compiles");
        cases.push(GenCase { udf: u.def.clone(), prog, cols, rows });
    }
    let total_rows: usize = cases.iter().map(|c| c.rows).sum();

    let mut interp = Interpreter::default();
    let tree_s = time_it(|| {
        let mut acc = 0.0;
        let mut args = Vec::new();
        for case in &cases {
            for r in 0..case.rows {
                args.clear();
                args.extend(case.cols.iter().map(|c| c[r].clone()));
                acc += interp.eval(&case.udf, &args).unwrap().cost.total;
            }
        }
        black_box(acc);
    });

    let mut vm = Vm::default();
    let vm_s = time_it(|| {
        let mut acc = 0.0;
        let mut out = Vec::new();
        for case in &cases {
            let mut start = 0;
            while start < case.rows {
                let end = (start + 1024).min(case.rows);
                let slices: Vec<&[Value]> = case.cols.iter().map(|c| &c[start..end]).collect();
                out.clear();
                let mut cost = CostCounter::new();
                vm.eval_batch(&case.prog, &slices, &mut out, &mut cost).unwrap();
                acc += cost.total;
                start = end;
            }
        }
        black_box(acc);
    });
    println!(
        "corpus mix ({} UDFs, {total_rows} rows): tree-walk {:>10.0} rows/s, vm {:>10.0} rows/s",
        cases.len(),
        total_rows as f64 / tree_s,
        total_rows as f64 / vm_s,
    );
    tree_s / vm_s
}
