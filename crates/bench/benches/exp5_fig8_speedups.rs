//! Exp 5 / **Figure 8** — pull-up advisor speedups per dataset:
//! the no-pull-up baseline (1.0), the optimum, GRACEFUL with actual
//! cardinalities (Cost) and the three distribution strategies with
//! DeepDB-like cardinalities.

use graceful_bench::{announce, corpora, rule};
use graceful_core::advisor::Strategy;
use graceful_core::experiments::{cross_validate, run_advisor, summarize_advisor, EstimatorKind};
use graceful_core::featurize::Featurizer;

fn main() {
    let cfg = announce("Exp 5 / Figure 8: advisor speedups per dataset");
    let all = corpora(&cfg);
    let folds = cross_validate(&all, &cfg, Featurizer::full());
    let per_db = (cfg.queries_per_db / 2).clamp(8, 500);

    println!(
        "{:<12} | {:>8} | {:>12} | {:>14} | {:>12} | {:>12}",
        "dataset", "Optimum", "Cost/Actual", "Conservative", "AuC", "UBC"
    );
    rule(90);
    for fold in &folds {
        for &t in &fold.test_indices {
            let corpus = &all[t];
            let cost = summarize_advisor(&run_advisor(
                &fold.model,
                corpus,
                EstimatorKind::Actual,
                Strategy::Cost,
                1,
                per_db,
            ));
            let cons = summarize_advisor(&run_advisor(
                &fold.model,
                corpus,
                EstimatorKind::DataDriven,
                Strategy::Conservative,
                1,
                per_db,
            ));
            let auc = summarize_advisor(&run_advisor(
                &fold.model,
                corpus,
                EstimatorKind::DataDriven,
                Strategy::AreaUnderCurve,
                1,
                per_db,
            ));
            let ubc = summarize_advisor(&run_advisor(
                &fold.model,
                corpus,
                EstimatorKind::DataDriven,
                Strategy::UpperBoundCardinality,
                1,
                per_db,
            ));
            if cost.n == 0 {
                println!("{:<12} | (no advisable queries at this scale)", corpus.name);
                continue;
            }
            let optimum = cost.total_pushdown_ns / cost.total_optimal_ns.max(1e-9);
            println!(
                "{:<12} | {:>8.3} | {:>12.3} | {:>14.3} | {:>12.3} | {:>12.3}",
                corpus.name,
                optimum,
                cost.total_speedup,
                cons.total_speedup,
                auc.total_speedup,
                ubc.total_speedup
            );
        }
    }
    rule(90);
    println!(
        "\npaper shape check: advisor speedups track the optimum on most datasets; \
         airline/baseball are the weakest (limited potential / card-est errors); \
         speedup 1.0 = always-push-down baseline"
    );
}
