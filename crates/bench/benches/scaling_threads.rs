//! Thread-scaling of the corpus-labelling loop — the paper's 142-hour
//! bottleneck, and the first perf-trajectory measurement of the morsel
//! runtime.
//!
//! Labels all 20 databases on pools of 1, 2, 4, … workers (capped at the
//! machine), verifies every label is bit-identical to the single-threaded
//! run, prints the speedups, and writes the machine-readable record of the
//! run (overwriting any previous one) to `BENCH_scaling.json` at the repo
//! root. Acceptance bar: ≥ 2.5× end-to-end at 4 threads.
//!
//! Scale knobs apply as everywhere (`GRACEFUL_SCALE`,
//! `GRACEFUL_QUERIES_PER_DB`, …); thread counts are pinned per run, so
//! `GRACEFUL_THREADS` is deliberately ignored here.

use graceful_bench::announce;
use graceful_common::config::default_threads;
use graceful_common::metrics::par;
use graceful_core::corpus::{build_all_corpora_on, DatasetCorpus};
use graceful_runtime::Pool;
use std::time::Instant;

fn label_fingerprint(corpora: &[DatasetCorpus]) -> Vec<u64> {
    corpora.iter().flat_map(|c| c.queries.iter().map(|q| q.runtime_ns.to_bits())).collect()
}

fn main() {
    let cfg = announce("scaling_threads: corpus labelling, 1..N worker threads");
    let hw = default_threads();
    if hw < 4 {
        println!(
            "note: this machine reports {hw} hardware thread(s); speedups above {hw} \
             workers measure scheduling overhead, not scaling\n"
        );
    }
    let max = hw.clamp(4, 8);
    let mut counts = vec![1usize];
    let mut t = 2;
    while t <= max {
        counts.push(t);
        t *= 2;
    }

    let mut baseline_s = 0.0f64;
    let mut baseline_labels: Vec<u64> = Vec::new();
    let mut rows = Vec::new();
    for &threads in &counts {
        let pool = Pool::new(threads);
        let before = par::snapshot();
        let started = Instant::now();
        let corpora = build_all_corpora_on(&pool, &cfg);
        let seconds = started.elapsed().as_secs_f64();
        let after = par::snapshot();
        let labels = label_fingerprint(&corpora);
        let n_queries: usize = corpora.iter().map(|c| c.queries.len()).sum();
        if threads == 1 {
            baseline_s = seconds;
            baseline_labels = labels;
        } else {
            assert_eq!(labels, baseline_labels, "labels changed at {threads} threads");
        }
        let speedup = baseline_s / seconds.max(1e-9);
        println!(
            "threads {threads:>2}: {seconds:>7.2}s for {n_queries} labelled queries \
             ({speedup:.2}x vs 1 thread; +{} pool regions, +{} worker launches)",
            after.regions - before.regions,
            after.worker_launches - before.worker_launches,
        );
        rows.push((threads, seconds, speedup));
    }

    let json_rows: Vec<String> = rows
        .iter()
        .map(|(threads, seconds, speedup)| {
            format!("{{\"threads\":{threads},\"seconds\":{seconds:.4},\"speedup\":{speedup:.4}}}")
        })
        .collect();
    let json = format!(
        "{{\"bench\":\"scaling_threads\",\"seed\":{},\"data_scale\":{},\"queries_per_db\":{},\
         \"hardware_threads\":{},\"results\":[{}]}}\n",
        cfg.seed,
        cfg.data_scale,
        cfg.queries_per_db,
        hw,
        json_rows.join(",")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scaling.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }

    if let Some(&(threads, _, speedup)) = rows.iter().find(|(t, _, _)| *t == 4) {
        println!("speedup at {threads} threads: {speedup:.2}x (bar: 2.5x)");
    }
}
