//! Thread-scaling of the parallel data plane — scans, partitioned hash
//! joins and parallel aggregation at real data volume.
//!
//! Generates `tpc_h` at scale ≥ 100 (≈ 3M lineitem rows, 1M orders), runs a
//! join-heavy and an agg-heavy plan per operator class on pools of 1, 2 and
//! 4 workers, verifies every run label (`runtime_ns`, `agg_value`,
//! `out_rows`) is bit-identical to the single-threaded run, prints rows/sec
//! per class, and writes the machine-readable record of the run
//! (overwriting any previous one) to `BENCH_scaling.json` at the repo root.
//! The record also captures the storage footprint: bytes/row of the
//! encoded (dict/RLE) columns vs. their plain decoding.
//!
//! Acceptance bar: > 1.5× end-to-end at 4 threads on machines with ≥ 4
//! hardware threads. On smaller boxes the bar is waived — the record still
//! carries `hardware_threads` plus per-thread wall times, and the
//! bit-identity assertion always runs.
//!
//! Scale knobs apply as everywhere (`GRACEFUL_SCALE` is floored at 100
//! here, `GRACEFUL_SEED`, …); thread counts are pinned per run, so
//! `GRACEFUL_THREADS` is deliberately ignored.

use graceful_bench::announce;
use graceful_common::config::default_threads;
use graceful_exec::{ExecOptions, Session};
use graceful_plan::{AggFunc, ColRef, Plan, PlanOp, PlanOpKind, Pred};
use graceful_storage::datagen::{generate, schema};
use graceful_storage::{Database, Value};
use graceful_udf::ast::CmpOp;
use std::time::Instant;

/// Repetitions per (class, thread count): keeps per-cell noise down without
/// stretching the bench.
const REPS: usize = 3;

struct PlanClass {
    name: &'static str,
    plan: Plan,
    /// Rows entering the class's defining operator — the rows/sec basis.
    input_rows: usize,
}

/// The three operator classes the data plane parallelizes: a pruned
/// filter-scan, a partitioned hash join, and a column aggregation.
fn classes(db: &Database) -> Vec<PlanClass> {
    let rows = |t: &str| db.table(t).expect("tpc_h table").num_rows();
    let scan = Plan {
        ops: vec![
            PlanOp::new(PlanOpKind::Scan { table: "lineitem_t".into() }, vec![]),
            PlanOp::new(
                PlanOpKind::Filter {
                    preds: vec![Pred::new("lineitem_t", "quantity", CmpOp::Lt, Value::Int(11))],
                },
                vec![0],
            ),
            PlanOp::new(PlanOpKind::Agg { func: AggFunc::CountStar, column: None }, vec![1]),
        ],
        root: 2,
    };
    let join = Plan {
        ops: vec![
            PlanOp::new(PlanOpKind::Scan { table: "orders_t".into() }, vec![]),
            PlanOp::new(PlanOpKind::Scan { table: "customer_t".into() }, vec![]),
            PlanOp::new(
                PlanOpKind::Join {
                    left_col: ColRef::new("orders_t", "cust_id"),
                    right_col: ColRef::new("customer_t", "id"),
                },
                vec![0, 1],
            ),
            PlanOp::new(PlanOpKind::Agg { func: AggFunc::CountStar, column: None }, vec![2]),
        ],
        root: 3,
    };
    let agg = Plan {
        ops: vec![
            PlanOp::new(PlanOpKind::Scan { table: "lineitem_t".into() }, vec![]),
            PlanOp::new(
                PlanOpKind::Agg {
                    func: AggFunc::Sum,
                    column: Some(ColRef::new("lineitem_t", "price")),
                },
                vec![0],
            ),
        ],
        root: 1,
    };
    vec![
        PlanClass { name: "scan", plan: scan, input_rows: rows("lineitem_t") },
        PlanClass { name: "join", plan: join, input_rows: rows("orders_t") + rows("customer_t") },
        PlanClass { name: "agg", plan: agg, input_rows: rows("lineitem_t") },
    ]
}

/// Bit-level label of one run: everything inside the determinism contract.
fn label(run: &graceful_exec::QueryRun) -> Vec<u64> {
    let mut l = vec![run.runtime_ns.to_bits(), run.agg_value.to_bits()];
    l.extend(run.out_rows.iter().map(|&r| r as u64));
    l
}

/// Storage footprint of the whole database: (encoded, plain) heap bytes.
fn footprint(db: &Database) -> (usize, usize, usize) {
    let mut encoded = 0usize;
    let mut plain = 0usize;
    let mut rows = 0usize;
    for t in db.tables() {
        rows += t.num_rows();
        for c in t.columns() {
            encoded += c.data.heap_bytes();
            plain += c.data.plain_bytes();
        }
    }
    (encoded, plain, rows)
}

fn main() {
    let cfg = announce("scaling_threads: parallel scan/join/agg, 1/2/4 worker threads");
    let hw = default_threads();
    let scale = cfg.data_scale.max(100.0);
    println!("generating tpc_h at scale {scale} (seed {})...", cfg.seed);
    let db = generate(&schema("tpc_h"), scale, cfg.seed);
    let (encoded, plain, total_rows) = footprint(&db);
    let bpr = |bytes: usize| bytes as f64 / total_rows.max(1) as f64;
    println!(
        "storage: {total_rows} rows, {:.1} bytes/row encoded vs {:.1} plain ({:.2}x smaller)\n",
        bpr(encoded),
        bpr(plain),
        plain as f64 / encoded.max(1) as f64,
    );
    let classes = classes(&db);

    let mut baseline_s = 0.0f64;
    let mut baseline_labels: Vec<u64> = Vec::new();
    let mut rows_out = Vec::new();
    for threads in [1usize, 2, 4] {
        let session: Session = ExecOptions::new().threads(threads).build().expect("valid options");
        let mut labels: Vec<u64> = Vec::new();
        let mut class_cells = Vec::new();
        let mut total_s = 0.0f64;
        for class in &classes {
            let started = Instant::now();
            let mut run = None;
            for rep in 0..REPS {
                run = Some(
                    session.run(&db, &class.plan, rep as u64).expect("data-plane plan executes"),
                );
            }
            let seconds = started.elapsed().as_secs_f64() / REPS as f64;
            labels.extend(label(run.as_ref().expect("at least one rep")));
            let rps = class.input_rows as f64 / seconds.max(1e-9);
            println!(
                "threads {threads}: {name:<4} {seconds:>8.4}s/run  {rps:>14.0} rows/sec",
                name = class.name,
            );
            class_cells.push((class.name, seconds, rps));
            total_s += seconds;
        }
        if threads == 1 {
            baseline_s = total_s;
            baseline_labels = labels;
        } else {
            assert_eq!(labels, baseline_labels, "labels changed at {threads} threads");
        }
        let speedup = baseline_s / total_s.max(1e-9);
        println!("threads {threads}: total {total_s:.4}s ({speedup:.2}x vs 1 thread)\n");
        rows_out.push((threads, total_s, speedup, class_cells));
    }

    let json_rows: Vec<String> = rows_out
        .iter()
        .map(|(threads, total_s, speedup, cells)| {
            let classes_json: Vec<String> = cells
                .iter()
                .map(|(name, seconds, rps)| {
                    format!(
                        "{{\"class\":\"{name}\",\"seconds\":{seconds:.4},\
                         \"rows_per_sec\":{rps:.0}}}"
                    )
                })
                .collect();
            format!(
                "{{\"threads\":{threads},\"seconds\":{total_s:.4},\"speedup\":{speedup:.4},\
                 \"classes\":[{}]}}",
                classes_json.join(",")
            )
        })
        .collect();
    let json = format!(
        "{{\"bench\":\"scaling_threads\",\"seed\":{},\"data_scale\":{},\
         \"hardware_threads\":{},\"total_rows\":{},\
         \"bytes_per_row\":{{\"encoded\":{:.2},\"plain\":{:.2}}},\
         \"results\":[{}]}}\n",
        cfg.seed,
        scale,
        hw,
        total_rows,
        bpr(encoded),
        bpr(plain),
        json_rows.join(",")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scaling.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    assert!(bpr(encoded) < bpr(plain), "encoded columns must be measurably smaller than plain");
    if let Some((_, _, speedup, _)) = rows_out.iter().find(|(t, ..)| *t == 4) {
        if hw >= 4 {
            println!("speedup at 4 threads: {speedup:.2}x (bar: 1.5x)");
            assert!(*speedup > 1.5, "expected >1.5x at 4 threads, got {speedup:.2}x");
        } else {
            println!(
                "speedup at 4 threads: {speedup:.2}x — bar waived, machine reports \
                 {hw} hardware thread(s); bit-identity asserted instead"
            );
        }
    }
}
