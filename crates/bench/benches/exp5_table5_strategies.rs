//! Exp 5 / **Table V** — selection-strategy analysis over all datasets:
//! total runtime, total/median speedup, false positives, FP impact, and
//! optimization overhead, for Optimal / Cost(actual) / Conservative / AuC /
//! UBC / No-Pull-Up.

use graceful_bench::{announce, corpora, rule};
use graceful_core::advisor::Strategy;
use graceful_core::experiments::{
    cross_validate, run_advisor, summarize_advisor, AdvisorOutcome, EstimatorKind,
};
use graceful_core::featurize::Featurizer;

fn main() {
    let cfg = announce("Exp 5 / Table V: advisor strategies over all datasets");
    let all = corpora(&cfg);
    let folds = cross_validate(&all, &cfg, Featurizer::full());
    let per_db = (cfg.queries_per_db / 2).clamp(8, 500);

    let configs: [(&str, EstimatorKind, Strategy); 4] = [
        ("GRACEFUL (Cost)", EstimatorKind::Actual, Strategy::Cost),
        ("GRACEFUL (Conservative)", EstimatorKind::DataDriven, Strategy::Conservative),
        ("GRACEFUL (AuC)", EstimatorKind::DataDriven, Strategy::AreaUnderCurve),
        ("GRACEFUL (UBC)", EstimatorKind::DataDriven, Strategy::UpperBoundCardinality),
    ];
    let mut rows: Vec<(String, Vec<AdvisorOutcome>)> = Vec::new();
    for (label, kind, strat) in configs {
        let mut outcomes = Vec::new();
        for fold in &folds {
            for &t in &fold.test_indices {
                outcomes.extend(run_advisor(&fold.model, &all[t], kind, strat, 1, per_db));
            }
        }
        rows.push((label.to_string(), outcomes));
    }

    println!(
        "{:<26} | {:>12} | {:>12} | {:>12} | {:>8} | {:>10} | {:>10}",
        "strategy", "runtime (s)", "tot speedup", "med speedup", "FP rate", "FP impact", "overhead"
    );
    rule(110);
    // Optimal and No-Pull-Up derive from any outcome set (ground truths are
    // identical across strategies).
    let base = &rows[0].1;
    let opt_total: f64 = base.iter().map(|o| o.optimal_ns()).sum();
    let pd_total: f64 = base.iter().map(|o| o.pushdown_ns).sum();
    println!(
        "{:<26} | {:>12.3} | {:>12.3} | {:>12} | {:>8} | {:>10} | {:>10}",
        "Optimal",
        opt_total * 1e-9,
        pd_total / opt_total.max(1e-9),
        "-",
        "-",
        "-",
        "-"
    );
    for (label, outcomes) in &rows {
        let s = summarize_advisor(outcomes);
        println!(
            "{:<26} | {:>12.3} | {:>12.3} | {:>12.3} | {:>7.1}% | {:>9.1}% | {:>9.2}%",
            label,
            s.total_chosen_ns * 1e-9,
            s.total_speedup,
            s.median_speedup,
            s.false_positive_rate * 100.0,
            s.fp_impact * 100.0,
            s.overhead_fraction * 100.0
        );
    }
    println!(
        "{:<26} | {:>12.3} | {:>12.3} | {:>12.3} | {:>7.1}% | {:>9.1}% | {:>10}",
        "No Pull-Up (default)",
        pd_total * 1e-9,
        1.0,
        1.0,
        0.0,
        0.0,
        "-"
    );
    rule(110);
    println!(
        "\npaper shape check: Cost(actual) approaches Optimal; Conservative has the fewest \
         regressions among estimated-card strategies; UBC is the most aggressive \
         (highest FP impact); No-Pull-Up is the slowest overall"
    );
}
