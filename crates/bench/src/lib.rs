//! Shared plumbing for the experiment bench targets.
//!
//! Every paper table/figure has its own `harness = false` bench target, so
//! `cargo bench --workspace` regenerates the whole evaluation as text. All
//! targets scale with the `GRACEFUL_*` environment variables (see
//! `graceful-common::config`); the defaults finish in minutes, while
//! `GRACEFUL_FOLDS=20 GRACEFUL_QUERIES_PER_DB=4000 GRACEFUL_SCALE=10`
//! approaches the paper's full setup.

use graceful_common::config::ScaleConfig;
use graceful_common::metrics::QErrorSummary;
use graceful_core::corpus::{build_all_corpora, DatasetCorpus};
use std::time::Instant;

/// Resolve the experiment scale from the environment and echo it.
pub fn announce(experiment: &str) -> ScaleConfig {
    let cfg = ScaleConfig::from_env();
    println!("=== {experiment} ===");
    println!(
        "scale: data x{:.2}, {} queries/db, {} folds, {} epochs, hidden {}, seed {}",
        cfg.data_scale, cfg.queries_per_db, cfg.folds, cfg.epochs, cfg.hidden, cfg.seed
    );
    println!(
        "(set GRACEFUL_FOLDS=20 / GRACEFUL_QUERIES_PER_DB / GRACEFUL_SCALE for paper scale)\n"
    );
    cfg
}

/// Build (and time) the 20-database corpus.
pub fn corpora(cfg: &ScaleConfig) -> Vec<DatasetCorpus> {
    let started = Instant::now();
    let corpora = build_all_corpora(cfg);
    let n: usize = corpora.iter().map(|c| c.queries.len()).sum();
    println!(
        "built {} corpora / {} labelled queries in {:.1}s\n",
        corpora.len(),
        n,
        started.elapsed().as_secs_f64()
    );
    corpora
}

/// Format a Q-error summary as "med / p95 / p99" table cells.
pub fn fmt_q(s: &QErrorSummary) -> String {
    if s.count == 0 {
        return "    -      -      -".to_string();
    }
    format!("{:>6.2} {:>7.2} {:>7.2}", s.median, s.p95, s.p99)
}

/// Simple fixed-width header printer.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}
