//! Tree-walking interpreter with work accounting.
//!
//! The interpreter does double duty: it *computes* the UDF's result for a row
//! (so queries really execute, filters really filter) and it *accounts* every
//! operation it performs into a [`CostCounter`] (so the simulated runtime of
//! a query reflects exactly the code paths the data took — branch by branch,
//! iteration by iteration).
//!
//! Variables are resolved through a precomputed [`SlotTable`] shared with the
//! bytecode compiler ([`crate::bytecode`]): the scratch scope is a dense
//! `Vec` indexed by slot, so the per-row path neither hashes nor clones
//! variable names (the old implementation rebuilt a `String`-keyed `HashMap`
//! for every tuple). Scalar semantics live in [`crate::ops`], shared with the
//! batch VM so both backends agree bit-for-bit on values and costs.
//!
//! NULL semantics follow what DuckDB's Python UDFs see in practice: NULL
//! propagates through arithmetic and library calls, comparisons against NULL
//! are false, and a NULL branch condition takes the `else` side.

use crate::ast::{Expr, Stmt, UdfDef};
use crate::bytecode::SlotTable;
use crate::costs::{CostCounter, CostWeights};
use crate::ops;
use graceful_common::{GracefulError, Result};
use graceful_storage::Value;

/// Hard cap on `while` iterations, so malformed UDFs cannot hang the engine.
pub const MAX_WHILE_ITERS: u64 = 100_000;

/// Result of evaluating a UDF over one row.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalOutcome {
    pub value: Value,
    /// Work accounted during this evaluation (including invocation/return
    /// conversion overhead).
    pub cost: CostCounter,
}

/// Slot table prepared for one specific UDF, with enough identity recorded
/// to detect (practically) when the interpreter is handed a different one.
#[derive(Debug)]
struct PreparedUdf {
    /// Address of the `UdfDef` the table was built from. Address equality is
    /// the fast-path check; the fields below guard against an allocator
    /// placing a *different* UDF at a recycled address. The guards are a
    /// heuristic, but a mis-hit is harmless: every scope access (including
    /// argument binding in `eval`) resolves by *name* through the table, so
    /// a stale table can only produce an "undefined variable" error — never
    /// a silently wrong binding.
    addr: usize,
    name: String,
    n_params: usize,
    body_len: usize,
    table: SlotTable,
}

impl PreparedUdf {
    fn matches(&self, udf: &UdfDef) -> bool {
        self.addr == udf as *const UdfDef as usize
            && self.n_params == udf.params.len()
            && self.body_len == udf.body.len()
            && self.name == udf.name
    }
}

/// A reusable interpreter: holds the cost weights, the slot-indexed scratch
/// scope, and the slot table of the most recent UDF (so evaluating the same
/// UDF row after row — the execution engine's access pattern — does no
/// per-row name resolution setup at all).
#[derive(Debug)]
pub struct Interpreter {
    weights: CostWeights,
    prepared: Option<PreparedUdf>,
    /// Scratch scope, indexed by slot.
    slots: Vec<Value>,
    /// Which slots hold a value this row (params start defined).
    defined: Vec<bool>,
}

impl Default for Interpreter {
    fn default() -> Self {
        Self::new(CostWeights::default())
    }
}

impl Interpreter {
    pub fn new(weights: CostWeights) -> Self {
        Interpreter { weights, prepared: None, slots: Vec::new(), defined: Vec::new() }
    }

    pub fn weights(&self) -> &CostWeights {
        &self.weights
    }

    /// Evaluate `udf` with positional arguments `args` (one row's values).
    ///
    /// Falling off the end of the function returns `NULL`, like Python's
    /// implicit `return None`.
    pub fn eval(&mut self, udf: &UdfDef, args: &[Value]) -> Result<EvalOutcome> {
        if args.len() != udf.params.len() {
            return Err(GracefulError::Eval(format!(
                "{} expects {} args, got {}",
                udf.name,
                udf.params.len(),
                args.len()
            )));
        }
        if !self.prepared.as_ref().is_some_and(|p| p.matches(udf)) {
            crate::bytecode::check_params(udf)?;
            self.prepared = Some(PreparedUdf {
                addr: udf as *const UdfDef as usize,
                name: udf.name.clone(),
                n_params: udf.params.len(),
                body_len: udf.body.len(),
                table: SlotTable::build(udf),
            });
        }
        let prepared = self.prepared.as_ref().expect("just prepared");
        let n_slots = prepared.table.len();
        let mut cost = CostCounter::new();
        let text_chars: usize = args.iter().map(|v| v.as_str().map_or(0, |s| s.len())).sum();
        cost.add_invocation(&self.weights, args.len(), text_chars);
        // Reset the scratch scope: parameters defined, locals not. Stale
        // values stay in place (reads are gated on `defined`), so the row
        // loop allocates nothing.
        if self.slots.len() < n_slots {
            self.slots.resize(n_slots, Value::Null);
        }
        if self.defined.len() < n_slots {
            self.defined.resize(n_slots, false);
        }
        for d in self.defined.iter_mut().take(n_slots) {
            *d = false;
        }
        // Bind arguments BY NAME, not by position: every scope access goes
        // through the table's name lookup, so even if the cache heuristics
        // in `PreparedUdf::matches` ever mis-hit (recycled address with
        // matching guards), the worst outcome is a loud "undefined variable"
        // error — never a silently mis-bound value.
        for (p, v) in udf.params.iter().zip(args.iter()) {
            let slot = prepared
                .table
                .slot_of(p)
                .ok_or_else(|| GracefulError::Eval(format!("undefined variable {p}")))?
                as usize;
            self.slots[slot] = v.clone();
            self.defined[slot] = true;
        }
        let ret = self.run_block(&udf.body, &mut cost)?;
        cost.add_return(&self.weights);
        Ok(EvalOutcome { value: ret.unwrap_or(Value::Null), cost })
    }

    fn slot_of(&self, name: &str) -> Result<usize> {
        self.prepared
            .as_ref()
            .expect("eval prepared the table")
            .table
            .slot_of(name)
            .map(|s| s as usize)
            .ok_or_else(|| GracefulError::Eval(format!("undefined variable {name}")))
    }

    fn read_var(&self, name: &str) -> Result<Value> {
        let slot = self.slot_of(name)?;
        if self.defined[slot] {
            Ok(self.slots[slot].clone())
        } else {
            Err(GracefulError::Eval(format!("undefined variable {name}")))
        }
    }

    fn write_var(&mut self, name: &str, v: Value) -> Result<()> {
        let slot = self.slot_of(name)?;
        self.slots[slot] = v;
        self.defined[slot] = true;
        Ok(())
    }

    /// Execute a block; `Some(v)` means a `return` fired.
    fn run_block(&mut self, body: &[Stmt], cost: &mut CostCounter) -> Result<Option<Value>> {
        for stmt in body {
            cost.add_stmt(&self.weights);
            match stmt {
                Stmt::Assign { target, expr } => {
                    let v = self.eval_expr(expr, cost)?;
                    cost.add_assign(&self.weights);
                    self.write_var(target, v)?;
                }
                Stmt::If { cond, then_body, else_body } => {
                    let c = self.eval_expr(cond, cost)?;
                    cost.add_branch(&self.weights);
                    let taken = c.truthy();
                    let branch = if taken { then_body } else { else_body };
                    if let Some(v) = self.run_block(branch, cost)? {
                        return Ok(Some(v));
                    }
                }
                Stmt::For { var, count, body } => {
                    let n = self.eval_expr(count, cost)?.as_i64().unwrap_or(0).max(0) as u64;
                    for i in 0..n {
                        cost.add_loop_iter(&self.weights);
                        self.write_var(var, Value::Int(i as i64))?;
                        if let Some(v) = self.run_block(body, cost)? {
                            return Ok(Some(v));
                        }
                    }
                }
                Stmt::While { cond, body } => {
                    let mut iters = 0u64;
                    loop {
                        let c = self.eval_expr(cond, cost)?;
                        if !c.truthy() {
                            break;
                        }
                        cost.add_loop_iter(&self.weights);
                        iters += 1;
                        if iters > MAX_WHILE_ITERS {
                            return Err(GracefulError::IterationLimit { limit: MAX_WHILE_ITERS });
                        }
                        if let Some(v) = self.run_block(body, cost)? {
                            return Ok(Some(v));
                        }
                    }
                }
                Stmt::Return(e) => {
                    let v = self.eval_expr(e, cost)?;
                    return Ok(Some(v));
                }
            }
        }
        Ok(None)
    }

    fn eval_expr(&mut self, expr: &Expr, cost: &mut CostCounter) -> Result<Value> {
        match expr {
            Expr::Name(n) => self.read_var(n),
            Expr::Int(i) => Ok(Value::Int(*i)),
            Expr::Float(f) => Ok(Value::Float(*f)),
            Expr::Str(s) => Ok(Value::Text(s.clone())),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::NoneLit => Ok(Value::Null),
            Expr::Unary { op, operand } => {
                let v = self.eval_expr(operand, cost)?;
                Ok(ops::apply_unary(&self.weights, *op, &v, cost))
            }
            Expr::Binary { op, left, right } => {
                let l = self.eval_expr(left, cost)?;
                let r = self.eval_expr(right, cost)?;
                ops::apply_binary(&self.weights, *op, &l, &r, cost)
            }
            Expr::Compare { op, left, right } => {
                let l = self.eval_expr(left, cost)?;
                let r = self.eval_expr(right, cost)?;
                cost.add_compare(&self.weights);
                Ok(Value::Bool(ops::compare(*op, &l, &r)))
            }
            Expr::BoolOp { is_and, left, right } => {
                let l = self.eval_expr(left, cost)?;
                cost.add_compare(&self.weights);
                // Short circuit: the right side is only evaluated (and only
                // costs work) when needed — visible in the cost counters.
                if *is_and {
                    if !l.truthy() {
                        return Ok(Value::Bool(false));
                    }
                    let r = self.eval_expr(right, cost)?;
                    Ok(Value::Bool(r.truthy()))
                } else {
                    if l.truthy() {
                        return Ok(Value::Bool(true));
                    }
                    let r = self.eval_expr(right, cost)?;
                    Ok(Value::Bool(r.truthy()))
                }
            }
            Expr::Call { func, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval_expr(a, cost)?);
                }
                ops::apply_lib(&self.weights, *func, None, &vals, cost)
            }
            Expr::Method { func, recv, args } => {
                let r = self.eval_expr(recv, cost)?;
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval_expr(a, cost)?);
                }
                ops::apply_lib(&self.weights, *func, Some(&r), &vals, cost)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, CmpOp, Expr as E};
    use crate::libfns::LibFn;

    fn udf(body: Vec<Stmt>) -> UdfDef {
        UdfDef { name: "f".into(), params: vec!["x".into(), "y".into()], body }
    }

    fn run(u: &UdfDef, x: Value, y: Value) -> EvalOutcome {
        Interpreter::default().eval(u, &[x, y]).unwrap()
    }

    #[test]
    fn arithmetic_and_return() {
        let u = udf(vec![Stmt::Return(E::bin(BinOp::Add, E::name("x"), E::name("y")))]);
        let out = run(&u, Value::Int(2), Value::Int(3));
        assert_eq!(out.value, Value::Int(5));
        assert_eq!(out.cost.arith_ops, 1);
        assert!(out.cost.total > 0.0);
    }

    #[test]
    fn branch_costs_differ_by_path() {
        // if x < 20: z = x * 2 else: (loop 50: z = z + 1)
        let u = udf(vec![
            Stmt::Assign { target: "z".into(), expr: E::Int(0) },
            Stmt::If {
                cond: E::cmp(CmpOp::Lt, E::name("x"), E::Int(20)),
                then_body: vec![Stmt::Assign {
                    target: "z".into(),
                    expr: E::bin(BinOp::Mul, E::name("x"), E::Int(2)),
                }],
                else_body: vec![Stmt::For {
                    var: "i".into(),
                    count: E::Int(50),
                    body: vec![Stmt::Assign {
                        target: "z".into(),
                        expr: E::bin(BinOp::Add, E::name("z"), E::Int(1)),
                    }],
                }],
            },
            Stmt::Return(E::name("z")),
        ]);
        let cheap = run(&u, Value::Int(1), Value::Int(0));
        let pricey = run(&u, Value::Int(99), Value::Int(0));
        assert_eq!(cheap.value, Value::Int(2));
        assert_eq!(pricey.value, Value::Int(50));
        assert_eq!(pricey.cost.loop_iters, 50);
        assert!(pricey.cost.total > 3.0 * cheap.cost.total);
    }

    #[test]
    fn null_propagates_through_arithmetic() {
        let u = udf(vec![Stmt::Return(E::bin(BinOp::Mul, E::name("x"), E::name("y")))]);
        assert_eq!(run(&u, Value::Null, Value::Int(3)).value, Value::Null);
    }

    #[test]
    fn null_condition_takes_else() {
        let u = udf(vec![Stmt::If {
            cond: E::cmp(CmpOp::Lt, E::name("x"), E::Int(10)),
            then_body: vec![Stmt::Return(E::Int(1))],
            else_body: vec![Stmt::Return(E::Int(2))],
        }]);
        assert_eq!(run(&u, Value::Null, Value::Int(0)).value, Value::Int(2));
    }

    #[test]
    fn division_by_zero_yields_null() {
        let u = udf(vec![Stmt::Return(E::bin(BinOp::Div, E::name("x"), E::name("y")))]);
        assert_eq!(run(&u, Value::Int(4), Value::Int(0)).value, Value::Null);
        assert_eq!(run(&u, Value::Float(4.0), Value::Float(0.0)).value, Value::Null);
    }

    #[test]
    fn string_ops() {
        let u = udf(vec![Stmt::Return(E::Method {
            func: LibFn::StrUpper,
            recv: Box::new(E::name("x")),
            args: vec![],
        })]);
        let out = run(&u, Value::Text("abc".into()), Value::Int(0));
        assert_eq!(out.value, Value::Text("ABC".into()));
        assert!(out.cost.string_ops >= 1);
    }

    #[test]
    fn while_loop_terminates_and_counts() {
        // i = 0; while i < 7: i = i + 1; return i
        let u = udf(vec![
            Stmt::Assign { target: "i".into(), expr: E::Int(0) },
            Stmt::While {
                cond: E::cmp(CmpOp::Lt, E::name("i"), E::Int(7)),
                body: vec![Stmt::Assign {
                    target: "i".into(),
                    expr: E::bin(BinOp::Add, E::name("i"), E::Int(1)),
                }],
            },
            Stmt::Return(E::name("i")),
        ]);
        let out = run(&u, Value::Int(0), Value::Int(0));
        assert_eq!(out.value, Value::Int(7));
        assert_eq!(out.cost.loop_iters, 7);
    }

    #[test]
    fn runaway_while_is_capped_with_typed_error() {
        let u = udf(vec![Stmt::While {
            cond: E::Bool(true),
            body: vec![Stmt::Assign { target: "z".into(), expr: E::Int(1) }],
        }]);
        let err = Interpreter::default().eval(&u, &[Value::Int(0), Value::Int(0)]).unwrap_err();
        assert_eq!(err, GracefulError::IterationLimit { limit: MAX_WHILE_ITERS });
        assert!(err.to_string().contains("iterations"));
    }

    #[test]
    fn implicit_return_none() {
        let u = udf(vec![Stmt::Assign { target: "z".into(), expr: E::Int(1) }]);
        assert_eq!(run(&u, Value::Int(0), Value::Int(0)).value, Value::Null);
    }

    #[test]
    fn lib_calls_cost_and_compute() {
        let u = udf(vec![Stmt::Return(E::call(LibFn::MathSqrt, vec![E::name("x")]))]);
        let out = run(&u, Value::Float(16.0), Value::Int(0));
        assert_eq!(out.value, Value::Float(4.0));
        assert_eq!(out.cost.lib_calls, 1);
    }

    #[test]
    fn sqrt_of_negative_is_guarded() {
        let u = udf(vec![Stmt::Return(E::call(LibFn::MathSqrt, vec![E::name("x")]))]);
        let out = run(&u, Value::Float(-9.0), Value::Int(0));
        assert_eq!(out.value, Value::Float(3.0));
    }

    #[test]
    fn wrong_arity_errors() {
        let u = udf(vec![Stmt::Return(E::Int(1))]);
        assert!(Interpreter::default().eval(&u, &[Value::Int(1)]).is_err());
    }

    #[test]
    fn params_bind_by_name_across_udfs_sharing_an_interpreter() {
        // Two UDFs with the same name, arity and body length but swapped
        // parameter order, evaluated back-to-back on one interpreter (boxed
        // and dropped so the allocator may recycle the address — the exact
        // shape that could fool the prepared-table cache heuristics). The
        // by-name argument binding must return the right value either way.
        let make = |params: [&str; 2]| {
            Box::new(UdfDef {
                name: "f".into(),
                params: params.iter().map(|s| s.to_string()).collect(),
                body: vec![Stmt::Return(E::name("a"))],
            })
        };
        let mut interp = Interpreter::default();
        let u1 = make(["a", "b"]);
        assert_eq!(interp.eval(&u1, &[Value::Int(1), Value::Int(2)]).unwrap().value, Value::Int(1));
        drop(u1);
        let u2 = make(["b", "a"]);
        assert_eq!(
            interp.eval(&u2, &[Value::Int(1), Value::Int(2)]).unwrap().value,
            Value::Int(2),
            "swapped parameter order must bind by name"
        );
    }

    #[test]
    fn duplicate_params_rejected_identically_by_both_backends() {
        let dup = UdfDef {
            name: "f".into(),
            params: vec!["x".into(), "x".into()],
            body: vec![Stmt::Return(E::name("x"))],
        };
        let tree_err =
            Interpreter::default().eval(&dup, &[Value::Int(1), Value::Int(2)]).unwrap_err();
        let vm_err = crate::bytecode::compile(&dup).unwrap_err();
        assert_eq!(tree_err, vm_err);
        assert!(tree_err.to_string().contains("duplicate parameter x"), "{tree_err}");
    }

    #[test]
    fn undefined_variable_is_an_error_not_a_stale_read() {
        // One interpreter, two UDFs: a local assigned while running the first
        // must not be visible when the second reads the same name without
        // assigning it.
        let assigns = udf(vec![
            Stmt::Assign { target: "z".into(), expr: E::Int(42) },
            Stmt::Return(E::name("z")),
        ]);
        let reads = udf(vec![Stmt::Return(E::name("z"))]);
        let mut interp = Interpreter::default();
        assert_eq!(
            interp.eval(&assigns, &[Value::Int(0), Value::Int(0)]).unwrap().value,
            Value::Int(42)
        );
        let err = interp.eval(&reads, &[Value::Int(0), Value::Int(0)]).unwrap_err();
        assert!(err.to_string().contains("undefined variable z"), "{err}");
    }

    #[test]
    fn short_circuit_and_saves_work() {
        // x < 0 and math.sqrt(y) > 1 — sqrt must not run when x >= 0.
        let cond = E::BoolOp {
            is_and: true,
            left: Box::new(E::cmp(CmpOp::Lt, E::name("x"), E::Int(0))),
            right: Box::new(E::cmp(
                CmpOp::Gt,
                E::call(LibFn::MathSqrt, vec![E::name("y")]),
                E::Int(1),
            )),
        };
        let u = udf(vec![Stmt::Return(cond)]);
        let skipped = run(&u, Value::Int(5), Value::Int(100));
        assert_eq!(skipped.cost.lib_calls, 0);
        let taken = run(&u, Value::Int(-5), Value::Int(100));
        assert_eq!(taken.cost.lib_calls, 1);
        assert_eq!(taken.value, Value::Bool(true));
    }
}
