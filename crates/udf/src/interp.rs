//! Tree-walking interpreter with work accounting.
//!
//! The interpreter does double duty: it *computes* the UDF's result for a row
//! (so queries really execute, filters really filter) and it *accounts* every
//! operation it performs into a [`CostCounter`] (so the simulated runtime of
//! a query reflects exactly the code paths the data took — branch by branch,
//! iteration by iteration).
//!
//! NULL semantics follow what DuckDB's Python UDFs see in practice: NULL
//! propagates through arithmetic and library calls, comparisons against NULL
//! are false, and a NULL branch condition takes the `else` side.

use crate::ast::{BinOp, CmpOp, Expr, Stmt, UdfDef, UnOp};
use crate::costs::{CostCounter, CostWeights};
use crate::libfns::LibFn;
use graceful_common::{GracefulError, Result};
use graceful_storage::Value;
use std::collections::HashMap;

/// Hard cap on `while` iterations, so malformed UDFs cannot hang the engine.
pub const MAX_WHILE_ITERS: u64 = 100_000;

/// Result of evaluating a UDF over one row.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalOutcome {
    pub value: Value,
    /// Work accounted during this evaluation (including invocation/return
    /// conversion overhead).
    pub cost: CostCounter,
}

/// A reusable interpreter (holds the cost weights and a scratch scope map so
/// per-row evaluation does not allocate a fresh `HashMap`).
#[derive(Debug)]
pub struct Interpreter {
    weights: CostWeights,
    scope: HashMap<String, Value>,
}

impl Default for Interpreter {
    fn default() -> Self {
        Self::new(CostWeights::default())
    }
}

impl Interpreter {
    pub fn new(weights: CostWeights) -> Self {
        Interpreter { weights, scope: HashMap::new() }
    }

    pub fn weights(&self) -> &CostWeights {
        &self.weights
    }

    /// Evaluate `udf` with positional arguments `args` (one row's values).
    ///
    /// Falling off the end of the function returns `NULL`, like Python's
    /// implicit `return None`.
    pub fn eval(&mut self, udf: &UdfDef, args: &[Value]) -> Result<EvalOutcome> {
        if args.len() != udf.params.len() {
            return Err(GracefulError::Eval(format!(
                "{} expects {} args, got {}",
                udf.name,
                udf.params.len(),
                args.len()
            )));
        }
        let mut cost = CostCounter::new();
        let text_chars: usize =
            args.iter().map(|v| v.as_str().map_or(0, |s| s.len())).sum();
        cost.add_invocation(&self.weights, args.len(), text_chars);
        self.scope.clear();
        for (p, v) in udf.params.iter().zip(args.iter()) {
            self.scope.insert(p.clone(), v.clone());
        }
        let ret = self.run_block(&udf.body, &mut cost)?;
        cost.add_return(&self.weights);
        Ok(EvalOutcome { value: ret.unwrap_or(Value::Null), cost })
    }

    /// Execute a block; `Some(v)` means a `return` fired.
    fn run_block(&mut self, body: &[Stmt], cost: &mut CostCounter) -> Result<Option<Value>> {
        for stmt in body {
            cost.add_stmt(&self.weights);
            match stmt {
                Stmt::Assign { target, expr } => {
                    let v = self.eval_expr(expr, cost)?;
                    cost.add_assign(&self.weights);
                    self.scope.insert(target.clone(), v);
                }
                Stmt::If { cond, then_body, else_body } => {
                    let c = self.eval_expr(cond, cost)?;
                    cost.add_branch(&self.weights);
                    let taken = c.truthy();
                    let branch = if taken { then_body } else { else_body };
                    if let Some(v) = self.run_block(branch, cost)? {
                        return Ok(Some(v));
                    }
                }
                Stmt::For { var, count, body } => {
                    let n = self
                        .eval_expr(count, cost)?
                        .as_i64()
                        .unwrap_or(0)
                        .max(0) as u64;
                    for i in 0..n {
                        cost.add_loop_iter(&self.weights);
                        self.scope.insert(var.clone(), Value::Int(i as i64));
                        if let Some(v) = self.run_block(body, cost)? {
                            return Ok(Some(v));
                        }
                    }
                }
                Stmt::While { cond, body } => {
                    let mut iters = 0u64;
                    loop {
                        let c = self.eval_expr(cond, cost)?;
                        if !c.truthy() {
                            break;
                        }
                        cost.add_loop_iter(&self.weights);
                        iters += 1;
                        if iters > MAX_WHILE_ITERS {
                            return Err(GracefulError::Eval(format!(
                                "while loop exceeded {MAX_WHILE_ITERS} iterations"
                            )));
                        }
                        if let Some(v) = self.run_block(body, cost)? {
                            return Ok(Some(v));
                        }
                    }
                }
                Stmt::Return(e) => {
                    let v = self.eval_expr(e, cost)?;
                    return Ok(Some(v));
                }
            }
        }
        Ok(None)
    }

    fn eval_expr(&mut self, expr: &Expr, cost: &mut CostCounter) -> Result<Value> {
        match expr {
            Expr::Name(n) => self
                .scope
                .get(n)
                .cloned()
                .ok_or_else(|| GracefulError::Eval(format!("undefined variable {n}"))),
            Expr::Int(i) => Ok(Value::Int(*i)),
            Expr::Float(f) => Ok(Value::Float(*f)),
            Expr::Str(s) => Ok(Value::Text(s.clone())),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::NoneLit => Ok(Value::Null),
            Expr::Unary { op, operand } => {
                let v = self.eval_expr(operand, cost)?;
                cost.add_arith(&self.weights, false);
                Ok(match op {
                    UnOp::Neg => match v {
                        Value::Int(i) => Value::Int(-i),
                        Value::Float(f) => Value::Float(-f),
                        _ => Value::Null,
                    },
                    UnOp::Not => Value::Bool(!v.truthy()),
                })
            }
            Expr::Binary { op, left, right } => {
                let l = self.eval_expr(left, cost)?;
                let r = self.eval_expr(right, cost)?;
                self.apply_binary(*op, l, r, cost)
            }
            Expr::Compare { op, left, right } => {
                let l = self.eval_expr(left, cost)?;
                let r = self.eval_expr(right, cost)?;
                cost.add_compare(&self.weights);
                Ok(Value::Bool(compare(*op, &l, &r)))
            }
            Expr::BoolOp { is_and, left, right } => {
                let l = self.eval_expr(left, cost)?;
                cost.add_compare(&self.weights);
                // Short circuit: the right side is only evaluated (and only
                // costs work) when needed — visible in the cost counters.
                if *is_and {
                    if !l.truthy() {
                        return Ok(Value::Bool(false));
                    }
                    let r = self.eval_expr(right, cost)?;
                    Ok(Value::Bool(r.truthy()))
                } else {
                    if l.truthy() {
                        return Ok(Value::Bool(true));
                    }
                    let r = self.eval_expr(right, cost)?;
                    Ok(Value::Bool(r.truthy()))
                }
            }
            Expr::Call { func, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval_expr(a, cost)?);
                }
                self.apply_lib(*func, None, &vals, cost)
            }
            Expr::Method { func, recv, args } => {
                let r = self.eval_expr(recv, cost)?;
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval_expr(a, cost)?);
                }
                self.apply_lib(*func, Some(r), &vals, cost)
            }
        }
    }

    fn apply_binary(
        &mut self,
        op: BinOp,
        l: Value,
        r: Value,
        cost: &mut CostCounter,
    ) -> Result<Value> {
        // String concatenation.
        if op == BinOp::Add {
            if let (Value::Text(a), Value::Text(b)) = (&l, &r) {
                cost.add_string(&self.weights, a.len() + b.len());
                return Ok(Value::Text(format!("{a}{b}")));
            }
        }
        // String repetition `s * n`.
        if op == BinOp::Mul {
            if let (Value::Text(a), Value::Int(n)) = (&l, &r) {
                let n = (*n).clamp(0, 64) as usize;
                cost.add_string(&self.weights, a.len() * n);
                return Ok(Value::Text(a.repeat(n)));
            }
        }
        let slow = matches!(op, BinOp::Pow | BinOp::FloorDiv | BinOp::Mod);
        cost.add_arith(&self.weights, slow);
        if l.is_null() || r.is_null() {
            return Ok(Value::Null);
        }
        // Integer fast path keeps int-typed data int-typed.
        if let (Value::Int(a), Value::Int(b)) = (&l, &r) {
            let (a, b) = (*a, *b);
            return Ok(match op {
                BinOp::Add => Value::Int(a.wrapping_add(b)),
                BinOp::Sub => Value::Int(a.wrapping_sub(b)),
                BinOp::Mul => Value::Int(a.wrapping_mul(b)),
                BinOp::Div => {
                    if b == 0 {
                        Value::Null
                    } else {
                        Value::Float(a as f64 / b as f64)
                    }
                }
                BinOp::Mod => {
                    if b == 0 {
                        Value::Null
                    } else {
                        Value::Int(a.rem_euclid(b))
                    }
                }
                BinOp::FloorDiv => {
                    if b == 0 {
                        Value::Null
                    } else {
                        Value::Int(a.div_euclid(b))
                    }
                }
                BinOp::Pow => {
                    if (0..=16).contains(&b) {
                        Value::Int(a.saturating_pow(b as u32))
                    } else {
                        Value::Float((a as f64).powf(b as f64))
                    }
                }
            });
        }
        let (a, b) = match (l.as_f64(), r.as_f64()) {
            (Some(a), Some(b)) => (a, b),
            _ => return Ok(Value::Null),
        };
        let out = match op {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => {
                if b == 0.0 {
                    return Ok(Value::Null);
                }
                a / b
            }
            BinOp::Mod => {
                if b == 0.0 {
                    return Ok(Value::Null);
                }
                a.rem_euclid(b)
            }
            BinOp::FloorDiv => {
                if b == 0.0 {
                    return Ok(Value::Null);
                }
                (a / b).floor()
            }
            BinOp::Pow => sanitize(a.powf(b)),
        };
        Ok(Value::Float(sanitize(out)))
    }

    fn apply_lib(
        &mut self,
        f: LibFn,
        recv: Option<Value>,
        args: &[Value],
        cost: &mut CostCounter,
    ) -> Result<Value> {
        use LibFn::*;
        cost.add_lib_call(f);
        // NULL propagation: any NULL input yields NULL (cheap early exit,
        // mirroring how adapters skip the Python call for NULL rows).
        if recv.as_ref().is_some_and(Value::is_null) || args.iter().any(Value::is_null) {
            return Ok(Value::Null);
        }
        let num = |i: usize| args.get(i).and_then(Value::as_f64);
        let out = match f {
            MathSqrt | NpSqrt => num(0).map(|x| Value::Float(sanitize(x.abs().sqrt()))),
            MathPow | NpPower => match (num(0), num(1)) {
                (Some(a), Some(b)) => Some(Value::Float(sanitize(a.powf(b)))),
                _ => None,
            },
            MathLog | NpLog => num(0).map(|x| Value::Float(sanitize(x.abs().max(1e-12).ln()))),
            MathExp | NpExp => num(0).map(|x| Value::Float(sanitize(x.min(700.0).exp()))),
            MathSin => num(0).map(|x| Value::Float(x.sin())),
            MathCos => num(0).map(|x| Value::Float(x.cos())),
            MathAtan => num(0).map(|x| Value::Float(x.atan())),
            MathFloor => num(0).map(|x| Value::Int(x.floor() as i64)),
            MathCeil => num(0).map(|x| Value::Int(x.ceil() as i64)),
            MathFabs | NpAbs => num(0).map(|x| Value::Float(x.abs())),
            NpMinimum => match (num(0), num(1)) {
                (Some(a), Some(b)) => Some(Value::Float(a.min(b))),
                _ => None,
            },
            NpMaximum => match (num(0), num(1)) {
                (Some(a), Some(b)) => Some(Value::Float(a.max(b))),
                _ => None,
            },
            NpClip => match (num(0), num(1), num(2)) {
                (Some(x), Some(lo), Some(hi)) => Some(Value::Float(x.clamp(lo, hi.max(lo)))),
                _ => None,
            },
            NpSign => num(0).map(|x| Value::Float(x.signum())),
            NpRound | BuiltinRound => num(0).map(|x| Value::Float(x.round())),
            BuiltinAbs => match args.first() {
                Some(Value::Int(i)) => Some(Value::Int(i.abs())),
                Some(v) => v.as_f64().map(|x| Value::Float(x.abs())),
                None => None,
            },
            BuiltinInt => num(0).map(|x| Value::Int(x as i64)),
            BuiltinFloat => num(0).map(Value::Float),
            BuiltinMin => match (num(0), num(1)) {
                (Some(a), Some(b)) => Some(Value::Float(a.min(b))),
                _ => None,
            },
            BuiltinMax => match (num(0), num(1)) {
                (Some(a), Some(b)) => Some(Value::Float(a.max(b))),
                _ => None,
            },
            BuiltinLen => match args.first() {
                Some(Value::Text(s)) => {
                    cost.add_string(&self.weights, 0);
                    Some(Value::Int(s.len() as i64))
                }
                _ => None,
            },
            BuiltinStr => {
                let s = args.first().map(|v| match v {
                    Value::Text(t) => t.clone(),
                    other => other.to_string(),
                });
                s.map(|s| {
                    cost.add_string(&self.weights, s.len());
                    Value::Text(s)
                })
            }
            // String methods (receiver required).
            StrUpper | StrLower | StrStrip | StrReplace | StrStartswith | StrEndswith
            | StrFind | StrSplitCount => {
                let s = match recv {
                    Some(Value::Text(s)) => s,
                    _ => return Ok(Value::Null),
                };
                cost.add_string(&self.weights, s.len());
                let arg_str = |i: usize| args.get(i).and_then(|v| v.as_str().map(str::to_string));
                match f {
                    StrUpper => Some(Value::Text(s.to_uppercase())),
                    StrLower => Some(Value::Text(s.to_lowercase())),
                    StrStrip => Some(Value::Text(s.trim().to_string())),
                    StrReplace => match (arg_str(0), arg_str(1)) {
                        (Some(from), Some(to)) if !from.is_empty() => {
                            Some(Value::Text(s.replace(&from, &to)))
                        }
                        _ => Some(Value::Text(s)),
                    },
                    StrStartswith => arg_str(0).map(|p| Value::Bool(s.starts_with(&p))),
                    StrEndswith => arg_str(0).map(|p| Value::Bool(s.ends_with(&p))),
                    StrFind => arg_str(0).map(|p| {
                        Value::Int(s.find(&p).map(|i| i as i64).unwrap_or(-1))
                    }),
                    StrSplitCount => arg_str(0).map(|p| {
                        let count = if p.is_empty() { 1 } else { s.matches(&p).count() + 1 };
                        Value::Int(count as i64)
                    }),
                    _ => unreachable!("string method match is exhaustive"),
                }
            }
        };
        Ok(out.unwrap_or(Value::Null))
    }
}

/// SQL/Python-style comparison: NULL never compares true.
fn compare(op: CmpOp, l: &Value, r: &Value) -> bool {
    use std::cmp::Ordering::*;
    match l.compare(r) {
        None => false,
        Some(ord) => match op {
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
        },
    }
}

/// Replace NaN/inf (from overflowing powf etc.) with large-but-finite values
/// so downstream filters and aggregates stay well-defined.
fn sanitize(x: f64) -> f64 {
    if x.is_nan() {
        0.0
    } else if x.is_infinite() {
        if x > 0.0 {
            1e300
        } else {
            -1e300
        }
    } else {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Expr as E;

    fn udf(body: Vec<Stmt>) -> UdfDef {
        UdfDef { name: "f".into(), params: vec!["x".into(), "y".into()], body }
    }

    fn run(u: &UdfDef, x: Value, y: Value) -> EvalOutcome {
        Interpreter::default().eval(u, &[x, y]).unwrap()
    }

    #[test]
    fn arithmetic_and_return() {
        let u = udf(vec![Stmt::Return(E::bin(BinOp::Add, E::name("x"), E::name("y")))]);
        let out = run(&u, Value::Int(2), Value::Int(3));
        assert_eq!(out.value, Value::Int(5));
        assert_eq!(out.cost.arith_ops, 1);
        assert!(out.cost.total > 0.0);
    }

    #[test]
    fn branch_costs_differ_by_path() {
        // if x < 20: z = x * 2 else: (loop 50: z = z + 1)
        let u = udf(vec![
            Stmt::Assign { target: "z".into(), expr: E::Int(0) },
            Stmt::If {
                cond: E::cmp(CmpOp::Lt, E::name("x"), E::Int(20)),
                then_body: vec![Stmt::Assign {
                    target: "z".into(),
                    expr: E::bin(BinOp::Mul, E::name("x"), E::Int(2)),
                }],
                else_body: vec![Stmt::For {
                    var: "i".into(),
                    count: E::Int(50),
                    body: vec![Stmt::Assign {
                        target: "z".into(),
                        expr: E::bin(BinOp::Add, E::name("z"), E::Int(1)),
                    }],
                }],
            },
            Stmt::Return(E::name("z")),
        ]);
        let cheap = run(&u, Value::Int(1), Value::Int(0));
        let pricey = run(&u, Value::Int(99), Value::Int(0));
        assert_eq!(cheap.value, Value::Int(2));
        assert_eq!(pricey.value, Value::Int(50));
        assert_eq!(pricey.cost.loop_iters, 50);
        assert!(pricey.cost.total > 3.0 * cheap.cost.total);
    }

    #[test]
    fn null_propagates_through_arithmetic() {
        let u = udf(vec![Stmt::Return(E::bin(BinOp::Mul, E::name("x"), E::name("y")))]);
        assert_eq!(run(&u, Value::Null, Value::Int(3)).value, Value::Null);
    }

    #[test]
    fn null_condition_takes_else() {
        let u = udf(vec![Stmt::If {
            cond: E::cmp(CmpOp::Lt, E::name("x"), E::Int(10)),
            then_body: vec![Stmt::Return(E::Int(1))],
            else_body: vec![Stmt::Return(E::Int(2))],
        }]);
        assert_eq!(run(&u, Value::Null, Value::Int(0)).value, Value::Int(2));
    }

    #[test]
    fn division_by_zero_yields_null() {
        let u = udf(vec![Stmt::Return(E::bin(BinOp::Div, E::name("x"), E::name("y")))]);
        assert_eq!(run(&u, Value::Int(4), Value::Int(0)).value, Value::Null);
        assert_eq!(run(&u, Value::Float(4.0), Value::Float(0.0)).value, Value::Null);
    }

    #[test]
    fn string_ops() {
        let u = udf(vec![Stmt::Return(E::Method {
            func: LibFn::StrUpper,
            recv: Box::new(E::name("x")),
            args: vec![],
        })]);
        let out = run(&u, Value::Text("abc".into()), Value::Int(0));
        assert_eq!(out.value, Value::Text("ABC".into()));
        assert!(out.cost.string_ops >= 1);
    }

    #[test]
    fn while_loop_terminates_and_counts() {
        // i = 0; while i < 7: i = i + 1; return i
        let u = udf(vec![
            Stmt::Assign { target: "i".into(), expr: E::Int(0) },
            Stmt::While {
                cond: E::cmp(CmpOp::Lt, E::name("i"), E::Int(7)),
                body: vec![Stmt::Assign {
                    target: "i".into(),
                    expr: E::bin(BinOp::Add, E::name("i"), E::Int(1)),
                }],
            },
            Stmt::Return(E::name("i")),
        ]);
        let out = run(&u, Value::Int(0), Value::Int(0));
        assert_eq!(out.value, Value::Int(7));
        assert_eq!(out.cost.loop_iters, 7);
    }

    #[test]
    fn runaway_while_is_capped() {
        let u = udf(vec![Stmt::While {
            cond: E::Bool(true),
            body: vec![Stmt::Assign { target: "z".into(), expr: E::Int(1) }],
        }]);
        let err = Interpreter::default().eval(&u, &[Value::Int(0), Value::Int(0)]).unwrap_err();
        assert!(err.to_string().contains("iterations"));
    }

    #[test]
    fn implicit_return_none() {
        let u = udf(vec![Stmt::Assign { target: "z".into(), expr: E::Int(1) }]);
        assert_eq!(run(&u, Value::Int(0), Value::Int(0)).value, Value::Null);
    }

    #[test]
    fn lib_calls_cost_and_compute() {
        let u = udf(vec![Stmt::Return(E::call(LibFn::MathSqrt, vec![E::name("x")]))]);
        let out = run(&u, Value::Float(16.0), Value::Int(0));
        assert_eq!(out.value, Value::Float(4.0));
        assert_eq!(out.cost.lib_calls, 1);
    }

    #[test]
    fn sqrt_of_negative_is_guarded() {
        let u = udf(vec![Stmt::Return(E::call(LibFn::MathSqrt, vec![E::name("x")]))]);
        let out = run(&u, Value::Float(-9.0), Value::Int(0));
        assert_eq!(out.value, Value::Float(3.0));
    }

    #[test]
    fn wrong_arity_errors() {
        let u = udf(vec![Stmt::Return(E::Int(1))]);
        assert!(Interpreter::default().eval(&u, &[Value::Int(1)]).is_err());
    }

    #[test]
    fn short_circuit_and_saves_work() {
        // x < 0 and math.sqrt(y) > 1 — sqrt must not run when x >= 0.
        let cond = E::BoolOp {
            is_and: true,
            left: Box::new(E::cmp(CmpOp::Lt, E::name("x"), E::Int(0))),
            right: Box::new(E::cmp(
                CmpOp::Gt,
                E::call(LibFn::MathSqrt, vec![E::name("y")]),
                E::Int(1),
            )),
        };
        let u = udf(vec![Stmt::Return(cond)]);
        let skipped = run(&u, Value::Int(5), Value::Int(100));
        assert_eq!(skipped.cost.lib_calls, 0);
        let taken = run(&u, Value::Int(-5), Value::Int(100));
        assert_eq!(taken.cost.lib_calls, 1);
        assert_eq!(taken.value, Value::Bool(true));
    }
}
