//! Vectorized batch VM for compiled UDF bytecode.
//!
//! Executes a [`Program`] over one row or a whole batch of rows with a
//! preallocated register file: aside from the `Value` clones string
//! operations inherently need, the per-row path performs **zero heap
//! allocation**. The VM produces the exact values and the bit-identical
//! [`CostCounter`] totals of the tree-walking [`Interpreter`] — both backends
//! share the scalar kernels in [`crate::ops`] and charge fixed-rate costs in
//! the same order (see the module docs of [`crate::bytecode`]).
//!
//! [`Interpreter`]: crate::interp::Interpreter

use crate::bytecode::{CostKind, Instr, Operand, Program};
use crate::costs::{CostCounter, CostWeights};
use crate::interp::{EvalOutcome, MAX_WHILE_ITERS};
use crate::ops;
use graceful_common::{GracefulError, Result};
use graceful_storage::Value;

/// A reusable VM: holds the cost weights, the register file and the
/// per-variable definedness bits. Reuse one instance across rows/batches so
/// the register file is allocated once.
#[derive(Debug)]
pub struct Vm {
    weights: CostWeights,
    regs: Vec<Value>,
    defined: Vec<bool>,
}

impl Default for Vm {
    fn default() -> Self {
        Self::new(CostWeights::default())
    }
}

impl Vm {
    pub fn new(weights: CostWeights) -> Self {
        Vm { weights, regs: Vec::new(), defined: Vec::new() }
    }

    pub fn weights(&self) -> &CostWeights {
        &self.weights
    }

    /// Evaluate one row, mirroring [`Interpreter::eval`] exactly (same
    /// arity checks, same invocation/return conversion charges, same
    /// outcome).
    ///
    /// [`Interpreter::eval`]: crate::interp::Interpreter::eval
    pub fn eval(&mut self, prog: &Program, args: &[Value]) -> Result<EvalOutcome> {
        if args.len() != prog.n_params() {
            return Err(GracefulError::Eval(format!(
                "{} expects {} args, got {}",
                prog.name,
                prog.n_params(),
                args.len()
            )));
        }
        let mut cost = CostCounter::new();
        let text_chars: usize = args.iter().map(|v| v.as_str().map_or(0, |s| s.len())).sum();
        cost.add_invocation(&self.weights, args.len(), text_chars);
        self.reset(prog);
        for (slot, v) in args.iter().enumerate() {
            self.regs[slot] = v.clone();
        }
        let value = self.run(prog, &mut cost)?;
        cost.add_return(&self.weights);
        Ok(EvalOutcome { value, cost })
    }

    /// Evaluate a batch of rows given **columnar** inputs: `cols[p][r]` is
    /// parameter `p` of row `r`. Outputs are appended to `out` (one value
    /// per row) and all accounted work is merged row-by-row into `cost`,
    /// in the same order a per-row loop over the tree-walker would merge it.
    pub fn eval_batch(
        &mut self,
        prog: &Program,
        cols: &[&[Value]],
        out: &mut Vec<Value>,
        cost: &mut CostCounter,
    ) -> Result<()> {
        if cols.len() != prog.n_params() {
            return Err(GracefulError::Eval(format!(
                "{} expects {} args, got {} columns",
                prog.name,
                prog.n_params(),
                cols.len()
            )));
        }
        let rows = cols.first().map_or(0, |c| c.len());
        // A ragged batch is caller error, but it must fail loudly in release
        // builds too — a `debug_assert!` here would let release indexing
        // panic mid-batch instead of returning a typed error.
        if let Some(bad) = cols.iter().find(|c| c.len() != rows) {
            return Err(GracefulError::Eval(format!(
                "{}: ragged batch: column of {} rows, expected {rows}",
                prog.name,
                bad.len()
            )));
        }
        out.reserve(rows);
        for r in 0..rows {
            let mut row_cost = CostCounter::new();
            let text_chars: usize = cols.iter().map(|c| c[r].as_str().map_or(0, |s| s.len())).sum();
            row_cost.add_invocation(&self.weights, cols.len(), text_chars);
            self.reset(prog);
            for (slot, col) in cols.iter().enumerate() {
                self.regs[slot] = col[r].clone();
            }
            let value = self.run(prog, &mut row_cost)?;
            row_cost.add_return(&self.weights);
            out.push(value);
            cost.merge(&row_cost);
        }
        Ok(())
    }

    /// Preallocate the register file and definedness bits for `prog` without
    /// evaluating anything. Parallel executors call this once per worker VM
    /// so the subsequent morsel loop is allocation-free from the first row
    /// (otherwise the first `eval`/`eval_batch` pays the resize).
    pub fn warm(&mut self, prog: &Program) {
        self.reset(prog);
    }

    /// Size the register file for `prog` and reset definedness: parameters
    /// defined, locals not. Register *contents* from previous rows are left
    /// in place (they are dead — every read is either dominated by a write
    /// or guarded by `CheckDef`), which is what makes the row loop
    /// allocation-free.
    fn reset(&mut self, prog: &Program) {
        if self.regs.len() < prog.n_regs as usize {
            self.regs.resize(prog.n_regs as usize, Value::Null);
        }
        let n_slots = prog.slots.len();
        if self.defined.len() < n_slots {
            self.defined.resize(n_slots, false);
        }
        let n_params = prog.n_params();
        for d in self.defined.iter_mut().take(n_params) {
            *d = true;
        }
        for d in self.defined.iter_mut().take(n_slots).skip(n_params) {
            *d = false;
        }
    }

    #[inline]
    fn val<'a>(regs: &'a [Value], consts: &'a [Value], op: Operand) -> &'a Value {
        if op.is_const() {
            &consts[op.index()]
        } else {
            &regs[op.index()]
        }
    }

    fn run(&mut self, prog: &Program, cost: &mut CostCounter) -> Result<Value> {
        let regs = &mut self.regs;
        let defined = &mut self.defined;
        let consts = &prog.consts;
        let w = &self.weights;
        let mut pc = 0usize;
        loop {
            match &prog.instrs[pc] {
                Instr::Copy { dst, src } => {
                    regs[*dst as usize] = Self::val(regs, consts, *src).clone();
                }
                Instr::Unary { op, dst, src } => {
                    let out = ops::apply_unary(w, *op, Self::val(regs, consts, *src), cost);
                    regs[*dst as usize] = out;
                }
                Instr::Binary { op, dst, l, r } => {
                    let out = ops::apply_binary(
                        w,
                        *op,
                        Self::val(regs, consts, *l),
                        Self::val(regs, consts, *r),
                        cost,
                    )?;
                    regs[*dst as usize] = out;
                }
                Instr::Compare { op, dst, l, r } => {
                    let lv = Self::val(regs, consts, *l);
                    let rv = Self::val(regs, consts, *r);
                    cost.add_compare(w);
                    let out = Value::Bool(ops::compare(*op, lv, rv));
                    regs[*dst as usize] = out;
                }
                Instr::CastBool { dst, src } => {
                    regs[*dst as usize] = Value::Bool(Self::val(regs, consts, *src).truthy());
                }
                Instr::Call { func, dst, base, n_args, has_recv } => {
                    let base = *base as usize;
                    let args_start = base + *has_recv as usize;
                    let recv = has_recv.then(|| &regs[base]);
                    let args = &regs[args_start..args_start + *n_args as usize];
                    let out = ops::apply_lib(w, *func, recv, args, cost)?;
                    regs[*dst as usize] = out;
                }
                Instr::Jump { target } => {
                    pc = *target as usize;
                    continue;
                }
                Instr::JumpIfFalse { cond, target } => {
                    if !Self::val(regs, consts, *cond).truthy() {
                        pc = *target as usize;
                        continue;
                    }
                }
                Instr::JumpIfTrue { cond, target } => {
                    if Self::val(regs, consts, *cond).truthy() {
                        pc = *target as usize;
                        continue;
                    }
                }
                Instr::ForInit { counter, limit, src } => {
                    let n = Self::val(regs, consts, *src).as_i64().unwrap_or(0).max(0);
                    regs[*limit as usize] = Value::Int(n);
                    regs[*counter as usize] = Value::Int(0);
                }
                Instr::ForNext { counter, limit, var_slot, exit } => {
                    // `ForInit` (which the verifier proves immediately
                    // precedes on every path) stores `Int` in both registers;
                    // anything else is corrupted state and must be a typed
                    // error, not a release-mode panic.
                    let c = match &regs[*counter as usize] {
                        Value::Int(c) => *c,
                        other => {
                            return Err(GracefulError::Verify(format!(
                                "{}: pc {pc}: for counter holds {other:?}, expected Int",
                                prog.name
                            )))
                        }
                    };
                    let n = match &regs[*limit as usize] {
                        Value::Int(n) => *n,
                        other => {
                            return Err(GracefulError::Verify(format!(
                                "{}: pc {pc}: for limit holds {other:?}, expected Int",
                                prog.name
                            )))
                        }
                    };
                    if c < n {
                        cost.add_loop_iter(w);
                        regs[*var_slot as usize] = Value::Int(c);
                        defined[*var_slot as usize] = true;
                        regs[*counter as usize] = Value::Int(c + 1);
                    } else {
                        pc = *exit as usize;
                        continue;
                    }
                }
                Instr::WhileInit { counter } => {
                    regs[*counter as usize] = Value::Int(0);
                }
                Instr::WhileIter { counter } => {
                    cost.add_loop_iter(w);
                    let iters = match &regs[*counter as usize] {
                        Value::Int(c) => *c + 1,
                        other => {
                            return Err(GracefulError::Verify(format!(
                                "{}: pc {pc}: while counter holds {other:?}, expected Int",
                                prog.name
                            )))
                        }
                    };
                    if iters as u64 > MAX_WHILE_ITERS {
                        return Err(GracefulError::IterationLimit { limit: MAX_WHILE_ITERS });
                    }
                    regs[*counter as usize] = Value::Int(iters);
                }
                Instr::CheckDef { slot } => {
                    if !defined[*slot as usize] {
                        return Err(GracefulError::Eval(format!(
                            "undefined variable {}",
                            prog.slots.names()[*slot as usize]
                        )));
                    }
                }
                Instr::MarkDef { slot } => {
                    defined[*slot as usize] = true;
                }
                Instr::Cost(kind) => match kind {
                    CostKind::Stmt => cost.add_stmt(w),
                    CostKind::Assign => cost.add_assign(w),
                    CostKind::Branch => cost.add_branch(w),
                    CostKind::Compare => cost.add_compare(w),
                },
                Instr::Return { src } => {
                    return Ok(Self::val(regs, consts, *src).clone());
                }
                Instr::ReturnNull => {
                    return Ok(Value::Null);
                }
            }
            pc += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, CmpOp, Expr as E, Stmt, UdfDef};
    use crate::bytecode::compile;
    use crate::interp::Interpreter;
    use crate::libfns::LibFn;

    fn udf(body: Vec<Stmt>) -> UdfDef {
        UdfDef { name: "f".into(), params: vec!["x".into(), "y".into()], body }
    }

    /// Run both backends and assert they agree exactly (value and cost).
    fn both(u: &UdfDef, x: Value, y: Value) -> EvalOutcome {
        let args = [x, y];
        let reference = Interpreter::default().eval(u, &args).unwrap();
        let prog = compile(u).unwrap();
        let vm_out = Vm::default().eval(&prog, &args).unwrap();
        assert_eq!(vm_out.value, reference.value, "value mismatch vs tree-walker");
        assert_eq!(vm_out.cost, reference.cost, "cost mismatch vs tree-walker");
        vm_out
    }

    #[test]
    fn arithmetic_and_return() {
        let u = udf(vec![Stmt::Return(E::bin(BinOp::Add, E::name("x"), E::name("y")))]);
        let out = both(&u, Value::Int(2), Value::Int(3));
        assert_eq!(out.value, Value::Int(5));
        assert_eq!(out.cost.arith_ops, 1);
    }

    #[test]
    fn branches_loops_and_implicit_return() {
        let u = udf(vec![
            Stmt::Assign { target: "z".into(), expr: E::Int(0) },
            Stmt::If {
                cond: E::cmp(CmpOp::Lt, E::name("x"), E::Int(20)),
                then_body: vec![Stmt::Assign {
                    target: "z".into(),
                    expr: E::bin(BinOp::Mul, E::name("x"), E::Int(2)),
                }],
                else_body: vec![Stmt::For {
                    var: "i".into(),
                    count: E::Int(50),
                    body: vec![Stmt::Assign {
                        target: "z".into(),
                        expr: E::bin(BinOp::Add, E::name("z"), E::Int(1)),
                    }],
                }],
            },
            Stmt::Return(E::name("z")),
        ]);
        assert_eq!(both(&u, Value::Int(1), Value::Int(0)).value, Value::Int(2));
        let pricey = both(&u, Value::Int(99), Value::Int(0));
        assert_eq!(pricey.value, Value::Int(50));
        assert_eq!(pricey.cost.loop_iters, 50);
    }

    #[test]
    fn null_semantics_match() {
        let u = udf(vec![Stmt::Return(E::bin(BinOp::Mul, E::name("x"), E::name("y")))]);
        assert_eq!(both(&u, Value::Null, Value::Int(3)).value, Value::Null);
        let branch = udf(vec![Stmt::If {
            cond: E::cmp(CmpOp::Lt, E::name("x"), E::Int(10)),
            then_body: vec![Stmt::Return(E::Int(1))],
            else_body: vec![Stmt::Return(E::Int(2))],
        }]);
        assert_eq!(both(&branch, Value::Null, Value::Int(0)).value, Value::Int(2));
    }

    #[test]
    fn while_loop_and_string_ops() {
        let u = udf(vec![
            Stmt::Assign { target: "i".into(), expr: E::Int(0) },
            Stmt::While {
                cond: E::cmp(CmpOp::Lt, E::name("i"), E::Int(7)),
                body: vec![Stmt::Assign {
                    target: "i".into(),
                    expr: E::bin(BinOp::Add, E::name("i"), E::Int(1)),
                }],
            },
            Stmt::Return(E::name("i")),
        ]);
        let out = both(&u, Value::Int(0), Value::Int(0));
        assert_eq!(out.value, Value::Int(7));
        assert_eq!(out.cost.loop_iters, 7);

        let s = udf(vec![Stmt::Return(E::Method {
            func: LibFn::StrUpper,
            recv: Box::new(E::name("x")),
            args: vec![],
        })]);
        let out = both(&s, Value::Text("abc".into()), Value::Int(0));
        assert_eq!(out.value, Value::Text("ABC".into()));
    }

    #[test]
    fn short_circuit_skips_work_identically() {
        let cond = E::BoolOp {
            is_and: true,
            left: Box::new(E::cmp(CmpOp::Lt, E::name("x"), E::Int(0))),
            right: Box::new(E::cmp(
                CmpOp::Gt,
                E::call(LibFn::MathSqrt, vec![E::name("y")]),
                E::Int(1),
            )),
        };
        let u = udf(vec![Stmt::Return(cond)]);
        let skipped = both(&u, Value::Int(5), Value::Int(100));
        assert_eq!(skipped.cost.lib_calls, 0);
        let taken = both(&u, Value::Int(-5), Value::Int(100));
        assert_eq!(taken.cost.lib_calls, 1);
        assert_eq!(taken.value, Value::Bool(true));
    }

    #[test]
    fn boolop_reading_its_own_assign_target() {
        // x = (y and x) must read the *original* x on the right-hand side.
        let u = udf(vec![
            Stmt::Assign {
                target: "x".into(),
                expr: E::BoolOp {
                    is_and: true,
                    left: Box::new(E::name("y")),
                    right: Box::new(E::name("x")),
                },
            },
            Stmt::Return(E::name("x")),
        ]);
        let out = both(&u, Value::Int(0), Value::Int(1));
        assert_eq!(out.value, Value::Bool(false));
        let out = both(&u, Value::Int(7), Value::Int(1));
        assert_eq!(out.value, Value::Bool(true));
    }

    #[test]
    fn runaway_while_reports_typed_limit() {
        let u = udf(vec![Stmt::While {
            cond: E::Bool(true),
            body: vec![Stmt::Assign { target: "z".into(), expr: E::Int(1) }],
        }]);
        let prog = compile(&u).unwrap();
        let err = Vm::default().eval(&prog, &[Value::Int(0), Value::Int(0)]).unwrap_err();
        assert_eq!(err, GracefulError::IterationLimit { limit: MAX_WHILE_ITERS });
    }

    #[test]
    fn undefined_variable_errors_like_tree_walker() {
        let u = udf(vec![Stmt::Return(E::name("ghost"))]);
        let prog = compile(&u).unwrap();
        let vm_err = Vm::default().eval(&prog, &[Value::Int(0), Value::Int(0)]).unwrap_err();
        let tw_err = Interpreter::default().eval(&u, &[Value::Int(0), Value::Int(0)]).unwrap_err();
        assert_eq!(vm_err, tw_err);
    }

    #[test]
    fn wrong_arity_errors() {
        let u = udf(vec![Stmt::Return(E::Int(1))]);
        let prog = compile(&u).unwrap();
        assert!(Vm::default().eval(&prog, &[Value::Int(1)]).is_err());
    }

    #[test]
    fn ragged_batch_is_a_typed_error_not_a_panic() {
        let u = udf(vec![Stmt::Return(E::bin(BinOp::Add, E::name("x"), E::name("y")))]);
        let prog = compile(&u).unwrap();
        let xs: Vec<Value> = (0..5).map(Value::Int).collect();
        let ys: Vec<Value> = (0..3).map(Value::Int).collect();
        let mut out = Vec::new();
        let mut cost = CostCounter::new();
        let err = Vm::default().eval_batch(&prog, &[&xs, &ys], &mut out, &mut cost).unwrap_err();
        assert!(matches!(&err, GracefulError::Eval(m) if m.contains("ragged batch")), "{err}");
        assert!(out.is_empty(), "no partial outputs before the shape check");
    }

    #[test]
    fn batch_matches_per_row_and_merges_costs() {
        let u = udf(vec![
            Stmt::Assign {
                target: "z".into(),
                expr: E::bin(BinOp::Mul, E::name("x"), E::Float(1.5)),
            },
            Stmt::If {
                cond: E::cmp(CmpOp::Lt, E::name("x"), E::Int(50)),
                then_body: vec![Stmt::Return(E::bin(BinOp::Add, E::name("z"), E::name("y")))],
                else_body: vec![Stmt::Return(E::call(LibFn::MathSqrt, vec![E::name("z")]))],
            },
        ]);
        let prog = compile(&u).unwrap();
        let xs: Vec<Value> = (0..100).map(Value::Int).collect();
        let ys: Vec<Value> = (0..100).map(|i| Value::Float(i as f64 / 3.0)).collect();
        let mut vm = Vm::default();
        let mut out = Vec::new();
        let mut batch_cost = CostCounter::new();
        vm.eval_batch(&prog, &[&xs, &ys], &mut out, &mut batch_cost).unwrap();
        assert_eq!(out.len(), 100);
        let mut expected_cost = CostCounter::new();
        let mut interp = Interpreter::default();
        for r in 0..100 {
            let o = interp.eval(&u, &[xs[r].clone(), ys[r].clone()]).unwrap();
            assert_eq!(o.value, out[r], "row {r}");
            expected_cost.merge(&o.cost);
        }
        assert_eq!(batch_cost, expected_cost);
    }
}
