//! Recursive-descent parser for the UDF language.
//!
//! Grammar (a Python subset sufficient for the UDF corpus of \[1\]):
//!
//! ```text
//! udf      := 'def' NAME '(' params ')' ':' block
//! block    := NEWLINE INDENT stmt+ DEDENT
//! stmt     := assign | if | for | while | return
//! assign   := NAME '=' expr NEWLINE
//! if       := 'if' expr ':' block ('elif' expr ':' block)* ('else' ':' block)?
//! for      := 'for' NAME 'in' 'range' '(' expr ')' ':' block
//! while    := 'while' expr ':' block
//! return   := 'return' expr NEWLINE
//! expr     := or_expr
//! or_expr  := and_expr ('or' and_expr)*
//! and_expr := not_expr ('and' not_expr)*
//! not_expr := 'not' not_expr | cmp_expr
//! cmp_expr := add_expr (CMPOP add_expr)?
//! add_expr := mul_expr (('+'|'-') mul_expr)*
//! mul_expr := unary (('*'|'/'|'%'|'//') unary)*
//! unary    := '-' unary | power
//! power    := postfix ('**' unary)?          // right associative
//! postfix  := atom ('.' NAME '(' args ')')*  // string methods
//! atom     := NAME | NAME '.' NAME '(' args ')' | NAME '(' args ')'
//!           | literal | '(' expr ')'
//! ```
//!
//! `elif` chains are desugared into nested `if` statements.

use crate::ast::{BinOp, CmpOp, Expr, Stmt, UdfDef, UnOp};
use crate::lexer::{lex, SpannedTok, Tok};
use crate::libfns::LibFn;
use graceful_common::{GracefulError, Result};

/// Parse a full UDF definition from source code.
pub fn parse_udf(source: &str) -> Result<UdfDef> {
    let toks = lex(source)?;
    let mut p = Parser { toks, pos: 0 };
    let udf = p.parse_def()?;
    p.skip_newlines();
    p.expect(&Tok::Eof)?;
    Ok(udf)
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos.min(self.toks.len() - 1)].tok
    }

    fn line(&self) -> usize {
        self.toks[self.pos.min(self.toks.len() - 1)].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].tok.clone();
        self.pos += 1;
        t
    }

    fn err(&self, msg: impl Into<String>) -> GracefulError {
        GracefulError::Parse { line: self.line(), message: msg.into() }
    }

    fn expect(&mut self, tok: &Tok) -> Result<()> {
        if self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {tok:?}, found {:?}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn skip_newlines(&mut self) {
        while matches!(self.peek(), Tok::Newline) {
            self.bump();
        }
    }

    fn parse_def(&mut self) -> Result<UdfDef> {
        self.skip_newlines();
        self.expect(&Tok::Def)?;
        let name = self.expect_ident()?;
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if !matches!(self.peek(), Tok::RParen) {
            loop {
                let p = self.expect_ident()?;
                // Python rejects duplicate argument names; so do we, and it
                // keeps parameter slots unambiguous for both UDF backends.
                if params.contains(&p) {
                    return Err(self.err(format!("duplicate parameter {p}")));
                }
                params.push(p);
                if matches!(self.peek(), Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        self.expect(&Tok::Colon)?;
        let body = self.parse_block()?;
        Ok(UdfDef { name, params, body })
    }

    fn parse_block(&mut self) -> Result<Vec<Stmt>> {
        self.expect(&Tok::Newline)?;
        self.expect(&Tok::Indent)?;
        let mut stmts = Vec::new();
        loop {
            match self.peek() {
                Tok::Dedent => {
                    self.bump();
                    break;
                }
                Tok::Eof => break,
                Tok::Newline => {
                    self.bump();
                }
                _ => stmts.push(self.parse_stmt()?),
            }
        }
        if stmts.is_empty() {
            return Err(self.err("empty block"));
        }
        Ok(stmts)
    }

    fn parse_stmt(&mut self) -> Result<Stmt> {
        match self.peek().clone() {
            Tok::If => self.parse_if(),
            Tok::For => self.parse_for(),
            Tok::While => self.parse_while(),
            Tok::Return => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect(&Tok::Newline)?;
                Ok(Stmt::Return(e))
            }
            Tok::Ident(name) => {
                self.bump();
                self.expect(&Tok::Assign)?;
                let e = self.parse_expr()?;
                self.expect(&Tok::Newline)?;
                Ok(Stmt::Assign { target: name, expr: e })
            }
            other => Err(self.err(format!("unexpected token {other:?} at statement start"))),
        }
    }

    fn parse_if(&mut self) -> Result<Stmt> {
        self.expect(&Tok::If)?;
        let cond = self.parse_expr()?;
        self.expect(&Tok::Colon)?;
        let then_body = self.parse_block()?;
        let else_body = match self.peek() {
            Tok::Elif => {
                // Desugar: `elif c:` becomes `else: if c:`.
                // Replace the Elif token with If and recurse.
                self.toks[self.pos].tok = Tok::If;
                vec![self.parse_if()?]
            }
            Tok::Else => {
                self.bump();
                self.expect(&Tok::Colon)?;
                self.parse_block()?
            }
            _ => Vec::new(),
        };
        Ok(Stmt::If { cond, then_body, else_body })
    }

    fn parse_for(&mut self) -> Result<Stmt> {
        self.expect(&Tok::For)?;
        let var = self.expect_ident()?;
        self.expect(&Tok::In)?;
        let range_name = self.expect_ident()?;
        if range_name != "range" {
            return Err(self.err("only `for NAME in range(expr)` loops are supported"));
        }
        self.expect(&Tok::LParen)?;
        let count = self.parse_expr()?;
        self.expect(&Tok::RParen)?;
        self.expect(&Tok::Colon)?;
        let body = self.parse_block()?;
        Ok(Stmt::For { var, count, body })
    }

    fn parse_while(&mut self) -> Result<Stmt> {
        self.expect(&Tok::While)?;
        let cond = self.parse_expr()?;
        self.expect(&Tok::Colon)?;
        let body = self.parse_block()?;
        Ok(Stmt::While { cond, body })
    }

    // --- expressions ---

    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while matches!(self.peek(), Tok::Or) {
            self.bump();
            let right = self.parse_and()?;
            left = Expr::BoolOp { is_and: false, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while matches!(self.peek(), Tok::And) {
            self.bump();
            let right = self.parse_not()?;
            left = Expr::BoolOp { is_and: true, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if matches!(self.peek(), Tok::Not) {
            self.bump();
            let operand = self.parse_not()?;
            return Ok(Expr::Unary { op: UnOp::Not, operand: Box::new(operand) });
        }
        self.parse_cmp()
    }

    fn parse_cmp(&mut self) -> Result<Expr> {
        let left = self.parse_add()?;
        let op = match self.peek() {
            Tok::Lt => CmpOp::Lt,
            Tok::Le => CmpOp::Le,
            Tok::Gt => CmpOp::Gt,
            Tok::Ge => CmpOp::Ge,
            Tok::EqEq => CmpOp::Eq,
            Tok::NotEq => CmpOp::Ne,
            _ => return Ok(left),
        };
        self.bump();
        let right = self.parse_add()?;
        Ok(Expr::cmp(op, left, right))
    }

    fn parse_add(&mut self) -> Result<Expr> {
        let mut left = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.parse_mul()?;
            left = Expr::bin(op, left, right);
        }
        Ok(left)
    }

    fn parse_mul(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                Tok::DoubleSlash => BinOp::FloorDiv,
                _ => break,
            };
            self.bump();
            let right = self.parse_unary()?;
            left = Expr::bin(op, left, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if matches!(self.peek(), Tok::Minus) {
            self.bump();
            let operand = self.parse_unary()?;
            // Fold negative literals for cleaner round-trips.
            return Ok(match operand {
                Expr::Int(i) => Expr::Int(-i),
                Expr::Float(f) => Expr::Float(-f),
                other => Expr::Unary { op: UnOp::Neg, operand: Box::new(other) },
            });
        }
        self.parse_power()
    }

    fn parse_power(&mut self) -> Result<Expr> {
        let base = self.parse_postfix()?;
        if matches!(self.peek(), Tok::DoubleStar) {
            self.bump();
            let exp = self.parse_unary()?; // right associative
            return Ok(Expr::bin(BinOp::Pow, base, exp));
        }
        Ok(base)
    }

    fn parse_postfix(&mut self) -> Result<Expr> {
        let mut e = self.parse_atom()?;
        while matches!(self.peek(), Tok::Dot) {
            self.bump();
            let method = self.expect_ident()?;
            let func = LibFn::resolve_method(&method)
                .ok_or_else(|| self.err(format!("unknown string method {method}")))?;
            self.expect(&Tok::LParen)?;
            let args = self.parse_args()?;
            if args.len() != func.arity() {
                return Err(self.err(format!(
                    "{method} expects {} args, got {}",
                    func.arity(),
                    args.len()
                )));
            }
            e = Expr::Method { func, recv: Box::new(e), args };
        }
        Ok(e)
    }

    fn parse_args(&mut self) -> Result<Vec<Expr>> {
        let mut args = Vec::new();
        if !matches!(self.peek(), Tok::RParen) {
            loop {
                args.push(self.parse_expr()?);
                if matches!(self.peek(), Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        Ok(args)
    }

    fn parse_atom(&mut self) -> Result<Expr> {
        match self.bump() {
            Tok::Int(i) => Ok(Expr::Int(i)),
            Tok::Float(f) => Ok(Expr::Float(f)),
            Tok::Str(s) => Ok(Expr::Str(s)),
            Tok::True => Ok(Expr::Bool(true)),
            Tok::False => Ok(Expr::Bool(false)),
            Tok::NoneKw => Ok(Expr::NoneLit),
            Tok::LParen => {
                let e = self.parse_expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                // `module.func(args)` — library call.
                if matches!(self.peek(), Tok::Dot)
                    && (name == "math" || name == "np" || name == "numpy")
                {
                    self.bump();
                    let fn_name = self.expect_ident()?;
                    let func = LibFn::resolve(Some(&name), &fn_name)
                        .ok_or_else(|| self.err(format!("unknown function {name}.{fn_name}")))?;
                    self.expect(&Tok::LParen)?;
                    let args = self.parse_args()?;
                    if args.len() != func.arity() {
                        return Err(self.err(format!(
                            "{name}.{fn_name} expects {} args, got {}",
                            func.arity(),
                            args.len()
                        )));
                    }
                    return Ok(Expr::Call { func, args });
                }
                // `func(args)` — builtin call.
                if matches!(self.peek(), Tok::LParen) {
                    if let Some(func) = LibFn::resolve(None, &name) {
                        self.bump();
                        let args = self.parse_args()?;
                        if args.len() != func.arity() {
                            return Err(self.err(format!(
                                "{name} expects {} args, got {}",
                                func.arity(),
                                args.len()
                            )));
                        }
                        return Ok(Expr::Call { func, args });
                    }
                    return Err(self.err(format!("unknown function {name}")));
                }
                Ok(Expr::Name(name))
            }
            other => Err(self.err(format!("unexpected token {other:?} in expression"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_figure2_udf() {
        let src = "\
def func(x, y):
    if x < 20:
        z = x ** 2
    else:
        z = 0
        for i in range(100):
            z = math.pow(math.sqrt(y), i) + z
    return z
";
        let udf = parse_udf(src).unwrap();
        assert_eq!(udf.name, "func");
        assert_eq!(udf.params, vec!["x".to_string(), "y".to_string()]);
        assert_eq!(udf.branch_count(), 1);
        assert_eq!(udf.loop_count(), 1);
        assert_eq!(udf.lib_calls(), vec![LibFn::MathPow, LibFn::MathSqrt]);
    }

    #[test]
    fn elif_desugars_to_nested_if() {
        let src = "\
def f(x):
    if x < 1:
        return 1
    elif x < 2:
        return 2
    else:
        return 3
";
        let udf = parse_udf(src).unwrap();
        assert_eq!(udf.branch_count(), 2);
        match &udf.body[0] {
            Stmt::If { else_body, .. } => {
                assert!(matches!(else_body[0], Stmt::If { .. }));
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_parameters_are_a_parse_error() {
        let err = parse_udf("def f(x, x):\n    return x\n").unwrap_err();
        assert!(err.to_string().contains("duplicate parameter x"), "{err}");
    }

    #[test]
    fn precedence() {
        let udf = parse_udf("def f(x):\n    return 1 + 2 * 3 ** 2\n").unwrap();
        // 1 + (2 * (3 ** 2)) = 19
        let mut interp = crate::interp::Interpreter::default();
        let out = interp.eval(&udf, &[graceful_storage::Value::Int(0)]).unwrap();
        assert_eq!(out.value, graceful_storage::Value::Int(19));
    }

    #[test]
    fn power_is_right_associative() {
        let udf = parse_udf("def f(x):\n    return 2 ** 3 ** 2\n").unwrap();
        let mut interp = crate::interp::Interpreter::default();
        let out = interp.eval(&udf, &[graceful_storage::Value::Int(0)]).unwrap();
        assert_eq!(out.value, graceful_storage::Value::Int(512));
    }

    #[test]
    fn unary_minus_binds_tighter_than_mul() {
        let udf = parse_udf("def f(x):\n    return -x * 3\n").unwrap();
        let mut interp = crate::interp::Interpreter::default();
        let out = interp.eval(&udf, &[graceful_storage::Value::Int(2)]).unwrap();
        assert_eq!(out.value, graceful_storage::Value::Int(-6));
    }

    #[test]
    fn string_methods_parse() {
        let src = "def f(s):\n    return s.upper().replace('A', 'B')\n";
        let udf = parse_udf(src).unwrap();
        assert_eq!(udf.lib_calls(), vec![LibFn::StrReplace, LibFn::StrUpper]);
    }

    #[test]
    fn while_loop_parses() {
        let src = "def f(x):\n    i = 0\n    while i < x:\n        i = i + 1\n    return i\n";
        let udf = parse_udf(src).unwrap();
        assert_eq!(udf.loop_count(), 1);
    }

    #[test]
    fn rejects_unknown_functions() {
        assert!(parse_udf("def f(x):\n    return os.system(x)\n").is_err());
        assert!(parse_udf("def f(x):\n    return mystery(x)\n").is_err());
    }

    #[test]
    fn rejects_wrong_arity() {
        assert!(parse_udf("def f(x):\n    return math.sqrt(x, x)\n").is_err());
        assert!(parse_udf("def f(x):\n    return math.pow(x)\n").is_err());
    }

    #[test]
    fn rejects_non_range_for() {
        assert!(
            parse_udf("def f(x):\n    for i in items(x):\n        y = 1\n    return 0\n").is_err()
        );
    }

    #[test]
    fn boolean_operators() {
        let src =
            "def f(x, y):\n    if x < 1 and not y > 2 or x == 5:\n        return 1\n    return 0\n";
        let udf = parse_udf(src).unwrap();
        assert_eq!(udf.branch_count(), 1);
    }

    #[test]
    fn reports_error_line() {
        let err = parse_udf("def f(x):\n    return $\n").unwrap_err();
        match err {
            GracefulError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("{other:?}"),
        }
    }
}
