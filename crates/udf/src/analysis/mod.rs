//! Static analysis of compiled UDF bytecode.
//!
//! [`crate::bytecode::compile`] lowers a UDF into a flat [`Program`](crate::bytecode::Program) that
//! three backends execute — the tree-walker (via the shared slot table), the
//! batch VM and the columnar SIMD executor. Those backends trust a pile of
//! structural invariants (jump targets in bounds, registers written before
//! read, cost markers adjacent to the instructions they describe, every path
//! ending in a return). This module makes that trust *checked*:
//!
//! - [`mod@cfg`] builds a basic-block control-flow graph over the instruction
//!   stream, with edge kinds and dominators.
//! - [`dataflow`] is a forward worklist solver, generic over any
//!   join-semilattice [`dataflow::Domain`].
//! - [`domains`] instantiates it four ways: definite initialization, a type
//!   lattice, null-ness, and integer intervals (with widening).
//! - [`verify`](verify::verify) runs on every `compile()` result (under the
//!   default `GRACEFUL_VERIFY=strict`) and turns a violated invariant into a
//!   typed [`GracefulError::Verify`](graceful_common::GracefulError::Verify)
//!   instead of backend-divergent behaviour or a release-mode panic.
//! - [`tripcount`] proves constant trip counts for `for` loops, which lets
//!   [`Program::simd_shape`](crate::bytecode::Program::simd_shape) reclassify
//!   them from [`InstrClass::Bail`](crate::bytecode::InstrClass::Bail) into
//!   [`InstrClass::Counted`](crate::bytecode::InstrClass::Counted) segments
//!   the columnar executor runs on the lane registers.
//!
//! Every analysis here is conservative: a domain may say "don't know" (top)
//! but must never claim a fact the interpreters can falsify — the property
//! suite runs the verifier over the whole generated corpus and the counted
//! loops differentially against all three backends to keep it honest.

pub mod cfg;
pub mod dataflow;
pub mod domains;
pub mod tripcount;
pub mod verify;

pub use cfg::{Cfg, EdgeKind};
pub use dataflow::{per_instr_facts, solve, Domain, Solution};
pub use domains::{DefiniteInit, IntervalDomain, Itv, NullDomain, Nullness, Ty, TypeDomain};
pub use tripcount::{trip_counts, MAX_COUNTED_TRIPS};
pub use verify::verify;
