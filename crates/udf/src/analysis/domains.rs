//! Concrete dataflow domains over the bytecode register file.
//!
//! All four domains are **conservative with respect to the shared kernels**
//! in [`crate::ops`]: every transfer was written against the actual kernel
//! semantics (wrapping integer arithmetic, NULL propagation, the
//! `Text * Int` repetition special case, `for` limits clamped to `>= 0`),
//! and the differential property suite keeps them honest. Two of the domains
//! carry conditional claims, which is what makes them sound without a full
//! product lattice:
//!
//! - [`Ty`] is the register's type **when it is non-NULL** (a register that
//!   always holds NULL satisfies any type claim vacuously — NULL constants
//!   are therefore [`Ty::Bottom`], the join identity).
//! - [`Itv`] bounds the register's value **when it holds an `Int`** (a
//!   register that never holds an `Int` is [`Itv::Never`]). Because every
//!   `Int`-producing binary path requires both operands to be `Int`,
//!   interval arithmetic composes without consulting the type domain, and
//!   overflow is handled by *checked* corner arithmetic (the kernels wrap,
//!   so saturating bounds would be unsound) falling back to [`Itv::Top`].

use super::cfg::EdgeKind;
use super::dataflow::Domain;
use crate::ast::{BinOp, UnOp};
use crate::bytecode::{Instr, Operand, Program};
use crate::libfns::LibFn;
use graceful_storage::Value;

fn set<T: Copy>(fact: &mut [T], reg: u16, v: T) {
    if let Some(slot) = fact.get_mut(reg as usize) {
        *slot = v;
    }
}

fn get<T: Copy>(fact: &[T], reg: u16, default: T) -> T {
    fact.get(reg as usize).copied().unwrap_or(default)
}

// -- definite initialization --------------------------------------------------

/// Definite initialization: `fact[r]` is true when register `r` has been
/// written on **every** path reaching the program point. Parameters start
/// initialized; joins intersect. [`Instr::CheckDef`] *sets* the bit — the VM
/// errors the row out unless the slot is defined, so any fall-through is a
/// runtime guarantee (eliding this makes the verifier reject legitimate
/// compiler output for conditionally-assigned variables).
pub struct DefiniteInit {
    n_regs: usize,
    n_params: usize,
}

impl DefiniteInit {
    /// Domain for one program.
    pub fn new(prog: &Program) -> DefiniteInit {
        DefiniteInit { n_regs: prog.n_regs as usize, n_params: prog.n_params() }
    }
}

impl Domain for DefiniteInit {
    type Fact = Vec<bool>;

    fn entry(&self) -> Vec<bool> {
        let mut f = vec![false; self.n_regs];
        for slot in f.iter_mut().take(self.n_params.min(self.n_regs)) {
            *slot = true;
        }
        f
    }

    fn join(&self, fact: &mut Vec<bool>, other: &Vec<bool>) -> bool {
        let mut changed = false;
        for (a, b) in fact.iter_mut().zip(other.iter()) {
            if *a && !b {
                *a = false;
                changed = true;
            }
        }
        changed
    }

    fn transfer(&self, instr: &Instr, fact: &mut Vec<bool>) {
        match instr {
            Instr::Copy { dst, .. }
            | Instr::Unary { dst, .. }
            | Instr::Binary { dst, .. }
            | Instr::Compare { dst, .. }
            | Instr::CastBool { dst, .. }
            | Instr::Call { dst, .. } => set(fact, *dst, true),
            Instr::ForInit { counter, limit, .. } => {
                set(fact, *counter, true);
                set(fact, *limit, true);
            }
            Instr::WhileInit { counter } | Instr::WhileIter { counter } => {
                set(fact, *counter, true)
            }
            Instr::CheckDef { slot } | Instr::MarkDef { slot } => set(fact, *slot, true),
            Instr::Jump { .. }
            | Instr::JumpIfFalse { .. }
            | Instr::JumpIfTrue { .. }
            | Instr::ForNext { .. }
            | Instr::Cost(_)
            | Instr::Return { .. }
            | Instr::ReturnNull => {}
        }
    }

    fn refine(&self, instr: &Instr, edge: EdgeKind, fact: &mut Vec<bool>) {
        // The loop variable and the advanced counter are written only when
        // the loop continues into its body.
        if let Instr::ForNext { counter, var_slot, .. } = instr {
            if edge == EdgeKind::Next {
                set(fact, *var_slot, true);
                set(fact, *counter, true);
            }
        }
    }
}

// -- type lattice -------------------------------------------------------------

/// Flat type lattice: the register's runtime type **when it is non-NULL**.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// The register is never non-NULL (NULL constants, expressions that
    /// always propagate NULL); the join identity.
    Bottom,
    /// `Value::Int` when non-NULL.
    Int,
    /// `Value::Float` when non-NULL.
    Float,
    /// `Value::Bool` when non-NULL.
    Bool,
    /// `Value::Text` when non-NULL.
    Text,
    /// Unknown / merged.
    Top,
}

impl Ty {
    fn join(self, other: Ty) -> Ty {
        match (self, other) {
            (a, b) if a == b => a,
            (Ty::Bottom, b) => b,
            (a, Ty::Bottom) => a,
            _ => Ty::Top,
        }
    }
}

/// Forward type analysis against the kernel semantics of [`crate::ops`].
pub struct TypeDomain<'a> {
    consts: &'a [Value],
    n_regs: usize,
}

impl<'a> TypeDomain<'a> {
    /// Domain for one program.
    pub fn new(prog: &'a Program) -> TypeDomain<'a> {
        TypeDomain { consts: &prog.consts, n_regs: prog.n_regs as usize }
    }

    fn op_ty(&self, fact: &[Ty], op: Operand) -> Ty {
        if op.is_const() {
            match self.consts.get(op.index()) {
                Some(Value::Int(_)) => Ty::Int,
                Some(Value::Float(_)) => Ty::Float,
                Some(Value::Bool(_)) => Ty::Bool,
                Some(Value::Text(_)) => Ty::Text,
                Some(Value::Null) => Ty::Bottom,
                None => Ty::Top,
            }
        } else {
            get(fact, op.index() as u16, Ty::Top)
        }
    }
}

/// Result type of `apply_binary` given non-NULL operand types. `Bottom`
/// means "never non-NULL" (e.g. `Text - Text` always yields NULL).
fn binary_ty(op: BinOp, l: Ty, r: Ty) -> Ty {
    use Ty::*;
    if l == Bottom || r == Bottom {
        return Bottom; // NULL propagation
    }
    if l == Top || r == Top {
        return Top;
    }
    let text = l == Text || r == Text;
    match op {
        BinOp::Add => match (l, r) {
            (Text, Text) => Text,
            _ if text => Bottom,
            (Int, Int) => Int,
            _ => Float,
        },
        BinOp::Mul => match (l, r) {
            (Text, Int) => Text, // string repetition
            _ if text => Bottom,
            (Int, Int) => Int,
            _ => Float,
        },
        BinOp::Sub | BinOp::Mod | BinOp::FloorDiv => match (l, r) {
            _ if text => Bottom,
            (Int, Int) => Int,
            _ => Float,
        },
        BinOp::Div => {
            if text {
                Bottom
            } else {
                Float
            }
        }
        // `Int ** Int` is Int for exponents 0..=16 and Float otherwise —
        // value-dependent, so the type alone cannot decide.
        BinOp::Pow => match (l, r) {
            _ if text => Bottom,
            (Int, Int) => Top,
            _ => Float,
        },
    }
}

/// Result type of `apply_lib` given the first argument's type (only
/// `builtin abs` is argument-type-directed).
fn call_ty(func: LibFn, arg0: Ty) -> Ty {
    use LibFn::*;
    match func {
        MathFloor | MathCeil | BuiltinInt | BuiltinLen | StrFind | StrSplitCount => Ty::Int,
        MathSqrt | NpSqrt | MathPow | NpPower | MathLog | NpLog | MathExp | NpExp | MathSin
        | MathCos | MathAtan | MathFabs | NpAbs | NpMinimum | NpMaximum | NpClip | NpSign
        | NpRound | BuiltinRound | BuiltinFloat | BuiltinMin | BuiltinMax => Ty::Float,
        BuiltinStr | StrUpper | StrLower | StrStrip | StrReplace => Ty::Text,
        StrStartswith | StrEndswith => Ty::Bool,
        BuiltinAbs => match arg0 {
            Ty::Int => Ty::Int,
            Ty::Top => Ty::Top,
            Ty::Bottom => Ty::Bottom,
            _ => Ty::Float,
        },
    }
}

impl Domain for TypeDomain<'_> {
    type Fact = Vec<Ty>;

    fn entry(&self) -> Vec<Ty> {
        vec![Ty::Top; self.n_regs]
    }

    fn join(&self, fact: &mut Vec<Ty>, other: &Vec<Ty>) -> bool {
        let mut changed = false;
        for (a, b) in fact.iter_mut().zip(other.iter()) {
            let j = a.join(*b);
            if j != *a {
                *a = j;
                changed = true;
            }
        }
        changed
    }

    fn transfer(&self, instr: &Instr, fact: &mut Vec<Ty>) {
        match instr {
            Instr::Copy { dst, src } => {
                let t = self.op_ty(fact, *src);
                set(fact, *dst, t);
            }
            Instr::Unary { op, dst, src } => {
                let t = match (op, self.op_ty(fact, *src)) {
                    (UnOp::Not, _) => Ty::Bool,
                    (UnOp::Neg, Ty::Int) => Ty::Int,
                    (UnOp::Neg, Ty::Float) => Ty::Float,
                    (UnOp::Neg, Ty::Top) => Ty::Top,
                    // Negating Bool/Text/NULL yields NULL.
                    (UnOp::Neg, _) => Ty::Bottom,
                };
                set(fact, *dst, t);
            }
            Instr::Binary { op, dst, l, r } => {
                let t = binary_ty(*op, self.op_ty(fact, *l), self.op_ty(fact, *r));
                set(fact, *dst, t);
            }
            Instr::Compare { dst, .. } | Instr::CastBool { dst, .. } => set(fact, *dst, Ty::Bool),
            Instr::Call { func, dst, base, has_recv, .. } => {
                let arg0 = get(fact, base + *has_recv as u16, Ty::Top);
                set(fact, *dst, call_ty(*func, arg0));
            }
            Instr::ForInit { counter, limit, .. } => {
                set(fact, *counter, Ty::Int);
                set(fact, *limit, Ty::Int);
            }
            Instr::WhileInit { counter } | Instr::WhileIter { counter } => {
                set(fact, *counter, Ty::Int)
            }
            Instr::Jump { .. }
            | Instr::JumpIfFalse { .. }
            | Instr::JumpIfTrue { .. }
            | Instr::ForNext { .. }
            | Instr::CheckDef { .. }
            | Instr::MarkDef { .. }
            | Instr::Cost(_)
            | Instr::Return { .. }
            | Instr::ReturnNull => {}
        }
    }

    fn refine(&self, instr: &Instr, edge: EdgeKind, fact: &mut Vec<Ty>) {
        if let Instr::ForNext { counter, var_slot, .. } = instr {
            if edge == EdgeKind::Next {
                set(fact, *var_slot, Ty::Int);
                set(fact, *counter, Ty::Int);
            }
        }
    }
}

// -- null-ness ----------------------------------------------------------------

/// Two-point null-ness lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Nullness {
    /// The register is proven non-NULL.
    NonNull,
    /// The register may hold NULL.
    Maybe,
}

/// Forward null-ness analysis. Deliberately coarse on arithmetic: any
/// binary operator or library call may yield NULL for *some* operand-type
/// combination (division by zero, `float(text)`, ...), and this domain does
/// not consult the type lattice — so only constants, copies, comparisons,
/// boolean coercions and loop counters are proven [`Nullness::NonNull`].
/// That is exactly what trip-count analysis needs: loop limits in the corpus
/// are literals or copies of literals.
pub struct NullDomain<'a> {
    consts: &'a [Value],
    n_regs: usize,
}

impl<'a> NullDomain<'a> {
    /// Domain for one program.
    pub fn new(prog: &'a Program) -> NullDomain<'a> {
        NullDomain { consts: &prog.consts, n_regs: prog.n_regs as usize }
    }

    fn op_nullness(&self, fact: &[Nullness], op: Operand) -> Nullness {
        if op.is_const() {
            match self.consts.get(op.index()) {
                Some(Value::Null) | None => Nullness::Maybe,
                Some(_) => Nullness::NonNull,
            }
        } else {
            get(fact, op.index() as u16, Nullness::Maybe)
        }
    }
}

impl Domain for NullDomain<'_> {
    type Fact = Vec<Nullness>;

    fn entry(&self) -> Vec<Nullness> {
        // Parameters come from table columns, which can be NULL.
        vec![Nullness::Maybe; self.n_regs]
    }

    fn join(&self, fact: &mut Vec<Nullness>, other: &Vec<Nullness>) -> bool {
        let mut changed = false;
        for (a, b) in fact.iter_mut().zip(other.iter()) {
            if *a == Nullness::NonNull && *b == Nullness::Maybe {
                *a = Nullness::Maybe;
                changed = true;
            }
        }
        changed
    }

    fn transfer(&self, instr: &Instr, fact: &mut Vec<Nullness>) {
        match instr {
            Instr::Copy { dst, src } => {
                let n = self.op_nullness(fact, *src);
                set(fact, *dst, n);
            }
            Instr::Unary { op, dst, .. } => {
                let n = match op {
                    UnOp::Not => Nullness::NonNull, // truthy() of anything is Bool
                    UnOp::Neg => Nullness::Maybe,   // -Text / -Bool / -NULL are NULL
                };
                set(fact, *dst, n);
            }
            Instr::Compare { dst, .. } | Instr::CastBool { dst, .. } => {
                set(fact, *dst, Nullness::NonNull)
            }
            Instr::Binary { dst, .. } | Instr::Call { dst, .. } => set(fact, *dst, Nullness::Maybe),
            Instr::ForInit { counter, limit, .. } => {
                set(fact, *counter, Nullness::NonNull);
                set(fact, *limit, Nullness::NonNull);
            }
            Instr::WhileInit { counter } | Instr::WhileIter { counter } => {
                set(fact, *counter, Nullness::NonNull)
            }
            Instr::Jump { .. }
            | Instr::JumpIfFalse { .. }
            | Instr::JumpIfTrue { .. }
            | Instr::ForNext { .. }
            | Instr::CheckDef { .. }
            | Instr::MarkDef { .. }
            | Instr::Cost(_)
            | Instr::Return { .. }
            | Instr::ReturnNull => {}
        }
    }

    fn refine(&self, instr: &Instr, edge: EdgeKind, fact: &mut Vec<Nullness>) {
        if let Instr::ForNext { counter, var_slot, .. } = instr {
            if edge == EdgeKind::Next {
                set(fact, *var_slot, Nullness::NonNull);
                set(fact, *counter, Nullness::NonNull);
            }
        }
    }
}

// -- integer intervals --------------------------------------------------------

/// Interval claim about a register: a bound on its value **when it holds an
/// `Int`** (other types make the claim vacuous).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Itv {
    /// The register never holds `Value::Int`; the join identity.
    Never,
    /// If the register holds `Value::Int(v)`, then `lo <= v <= hi`.
    Range {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// No information.
    Top,
}

impl Itv {
    fn singleton(n: i64) -> Itv {
        Itv::Range { lo: n, hi: n }
    }

    /// Widened join: a growing bound goes straight to the type extreme, so
    /// loop-carried chains (`z = z + 1`) converge in O(1) joins per edge.
    fn join(self, other: Itv) -> Itv {
        match (self, other) {
            (a, b) if a == b => a,
            (Itv::Never, b) => b,
            (a, Itv::Never) => a,
            (Itv::Top, _) | (_, Itv::Top) => Itv::Top,
            (Itv::Range { lo: a, hi: b }, Itv::Range { lo: c, hi: d }) => {
                let lo = if c < a { i64::MIN } else { a };
                let hi = if d > b { i64::MAX } else { b };
                Itv::Range { lo, hi }
            }
        }
    }
}

/// Forward interval analysis with widening at joins. Arithmetic uses
/// *checked* corner computation — the kernels wrap on overflow, so any
/// overflowing corner degrades the result to [`Itv::Top`] rather than a
/// (wrong) saturated bound.
pub struct IntervalDomain<'a> {
    consts: &'a [Value],
    n_regs: usize,
}

impl<'a> IntervalDomain<'a> {
    /// Domain for one program.
    pub fn new(prog: &'a Program) -> IntervalDomain<'a> {
        IntervalDomain { consts: &prog.consts, n_regs: prog.n_regs as usize }
    }

    fn op_itv(&self, fact: &[Itv], op: Operand) -> Itv {
        if op.is_const() {
            match self.consts.get(op.index()) {
                Some(Value::Int(n)) => Itv::singleton(*n),
                Some(_) => Itv::Never,
                None => Itv::Top,
            }
        } else {
            get(fact, op.index() as u16, Itv::Top)
        }
    }
}

/// Interval of `apply_binary`'s result. An `Int` result requires **both**
/// operands to be `Int` (the string-repetition and float paths yield
/// `Text`/`Float`/NULL), so `Never` on either side propagates.
fn binary_itv(op: BinOp, l: Itv, r: Itv) -> Itv {
    use Itv::*;
    if l == Never || r == Never {
        return Never;
    }
    match op {
        // True division always yields Float or NULL.
        BinOp::Div => Never,
        // Euclidean remainder is non-negative and below |divisor|; the
        // single overflowing pair (`i64::MIN % -1`) is pinned to 0.
        BinOp::Mod => match r {
            Range { lo: c, hi: d } => {
                if c == 0 && d == 0 {
                    Never // division by zero yields NULL
                } else {
                    let bound = c.saturating_abs().max(d.saturating_abs()).saturating_sub(1);
                    Range { lo: 0, hi: bound.max(0) }
                }
            }
            _ => Range { lo: 0, hi: i64::MAX },
        },
        BinOp::FloorDiv | BinOp::Pow => Top,
        BinOp::Add | BinOp::Sub | BinOp::Mul => match (l, r) {
            (Range { lo: a, hi: b }, Range { lo: c, hi: d }) => {
                let corners: [Option<i64>; 4] = match op {
                    BinOp::Add => [a.checked_add(c), b.checked_add(d), None, None],
                    BinOp::Sub => [a.checked_sub(d), b.checked_sub(c), None, None],
                    _ => [a.checked_mul(c), a.checked_mul(d), b.checked_mul(c), b.checked_mul(d)],
                };
                let mut lo = i64::MAX;
                let mut hi = i64::MIN;
                let used = if op == BinOp::Mul { 4 } else { 2 };
                for corner in corners.iter().take(used) {
                    match corner {
                        Some(v) => {
                            lo = lo.min(*v);
                            hi = hi.max(*v);
                        }
                        None => return Top, // a corner overflowed; kernels wrap
                    }
                }
                Range { lo, hi }
            }
            _ => Top,
        },
    }
}

impl Domain for IntervalDomain<'_> {
    type Fact = Vec<Itv>;

    fn entry(&self) -> Vec<Itv> {
        vec![Itv::Top; self.n_regs]
    }

    fn join(&self, fact: &mut Vec<Itv>, other: &Vec<Itv>) -> bool {
        let mut changed = false;
        for (a, b) in fact.iter_mut().zip(other.iter()) {
            let j = a.join(*b);
            if j != *a {
                *a = j;
                changed = true;
            }
        }
        changed
    }

    fn transfer(&self, instr: &Instr, fact: &mut Vec<Itv>) {
        match instr {
            Instr::Copy { dst, src } => {
                let i = self.op_itv(fact, *src);
                set(fact, *dst, i);
            }
            Instr::Unary { op, dst, src } => {
                let i = match (op, self.op_itv(fact, *src)) {
                    (UnOp::Not, _) => Itv::Never, // Bool result
                    // `i64::MIN` wraps under negation; any other range flips.
                    (UnOp::Neg, Itv::Range { lo, hi }) if lo > i64::MIN => {
                        Itv::Range { lo: -hi, hi: -lo }
                    }
                    (UnOp::Neg, Itv::Never) => Itv::Never,
                    (UnOp::Neg, _) => Itv::Top,
                };
                set(fact, *dst, i);
            }
            Instr::Binary { op, dst, l, r } => {
                let i = binary_itv(*op, self.op_itv(fact, *l), self.op_itv(fact, *r));
                set(fact, *dst, i);
            }
            Instr::Compare { dst, .. } | Instr::CastBool { dst, .. } => set(fact, *dst, Itv::Never),
            Instr::Call { func, dst, .. } => {
                use LibFn::*;
                let i = match func {
                    // Saturating |x|, `s.find` (−1 or an index), lengths and
                    // split counts have known sign structure; the float→int
                    // casts cover the full i64 range.
                    BuiltinAbs | BuiltinLen => Itv::Range { lo: 0, hi: i64::MAX },
                    StrFind => Itv::Range { lo: -1, hi: i64::MAX },
                    StrSplitCount => Itv::Range { lo: 1, hi: i64::MAX },
                    MathFloor | MathCeil | BuiltinInt => Itv::Top,
                    // Everything else yields Float/Text/Bool/NULL.
                    _ => Itv::Never,
                };
                set(fact, *dst, i);
            }
            Instr::ForInit { counter, limit, .. } => {
                set(fact, *counter, Itv::singleton(0));
                // The limit is the clamped trip count `max(n, 0)`.
                set(fact, *limit, Itv::Range { lo: 0, hi: i64::MAX });
            }
            Instr::WhileInit { counter } => set(fact, *counter, Itv::singleton(0)),
            Instr::WhileIter { counter } => {
                let i = match get(fact, *counter, Itv::Top) {
                    Itv::Range { lo, hi } => match (lo.checked_add(1), hi.checked_add(1)) {
                        (Some(lo), Some(hi)) => Itv::Range { lo, hi },
                        _ => Itv::Top,
                    },
                    _ => Itv::Top,
                };
                set(fact, *counter, i);
            }
            Instr::Jump { .. }
            | Instr::JumpIfFalse { .. }
            | Instr::JumpIfTrue { .. }
            | Instr::ForNext { .. }
            | Instr::CheckDef { .. }
            | Instr::MarkDef { .. }
            | Instr::Cost(_)
            | Instr::Return { .. }
            | Instr::ReturnNull => {}
        }
    }

    fn refine(&self, instr: &Instr, edge: EdgeKind, fact: &mut Vec<Itv>) {
        if let Instr::ForNext { counter, limit, var_slot, .. } = instr {
            if edge == EdgeKind::Next {
                // On the continuing edge `0 <= var < limit` and the counter
                // advances to `var + 1`.
                let (var, ctr) = match get(fact, *limit, Itv::Top) {
                    Itv::Range { hi, .. } => (
                        Itv::Range { lo: 0, hi: hi.saturating_sub(1).max(0) },
                        Itv::Range { lo: 1, hi: hi.max(1) },
                    ),
                    _ => (Itv::Range { lo: 0, hi: i64::MAX }, Itv::Range { lo: 1, hi: i64::MAX }),
                };
                set(fact, *var_slot, var);
                set(fact, *counter, ctr);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::cfg::Cfg;
    use super::super::dataflow::{per_instr_facts, solve};
    use super::*;
    use crate::ast::{CmpOp, Expr, Stmt, UdfDef};
    use crate::bytecode::compile;

    fn udf(params: &[&str], body: Vec<Stmt>) -> Program {
        let u = UdfDef {
            name: "f".into(),
            params: params.iter().map(|s| s.to_string()).collect(),
            body,
        };
        compile(&u).unwrap()
    }

    /// Fact holding at the (first) `Return{src: reg}` for the returned slot.
    fn at_return<D: Domain>(p: &Program, dom: &D) -> (D::Fact, u16) {
        let cfg = Cfg::build(p).unwrap();
        let sol = solve(&cfg, p, dom);
        let facts = per_instr_facts(&cfg, p, dom, &sol);
        for (pc, i) in p.instrs.iter().enumerate() {
            if let Instr::Return { src } = i {
                if !src.is_const() {
                    return (facts[pc].clone().expect("return reachable"), src.index() as u16);
                }
            }
        }
        panic!("no register return in test program");
    }

    #[test]
    fn definite_init_rejects_branch_only_assignments_until_checked() {
        let p = udf(
            &["x"],
            vec![
                Stmt::If {
                    cond: Expr::cmp(CmpOp::Lt, Expr::name("x"), Expr::Int(0)),
                    then_body: vec![Stmt::Assign { target: "z".into(), expr: Expr::Int(1) }],
                    else_body: vec![],
                },
                Stmt::Return(Expr::name("z")),
            ],
        );
        let dom = DefiniteInit::new(&p);
        let cfg = Cfg::build(&p).unwrap();
        let sol = solve(&cfg, &p, &dom);
        let facts = per_instr_facts(&cfg, &p, &dom, &sol);
        let z = p.slots.slot_of("z").unwrap() as usize;
        // Before the CheckDef, z is not definitely assigned; after it (at the
        // Return), the runtime guarantee makes it definite.
        let check_pc = p
            .instrs
            .iter()
            .position(|i| matches!(i, Instr::CheckDef { slot } if *slot == z as u16))
            .expect("compiler guards the read");
        assert!(!facts[check_pc].as_ref().unwrap()[z]);
        let (at_ret, slot) = at_return(&p, &dom);
        assert_eq!(slot as usize, z);
        assert!(at_ret[z], "CheckDef establishes definiteness");
    }

    #[test]
    fn type_lattice_tracks_constants_params_and_loop_vars() {
        // z = 2 + 3 → Int; parameters are Top; loop vars are Int.
        let p = udf(
            &["x"],
            vec![
                Stmt::Assign {
                    target: "z".into(),
                    expr: Expr::bin(crate::ast::BinOp::Add, Expr::Int(2), Expr::Int(3)),
                },
                Stmt::Return(Expr::name("z")),
            ],
        );
        let dom = TypeDomain::new(&p);
        let (f, slot) = at_return(&p, &dom);
        assert_eq!(f[slot as usize], Ty::Int);
        assert_eq!(f[p.slots.slot_of("x").unwrap() as usize], Ty::Top);
        // Division is Float even over Ints; comparisons are Bool.
        assert_eq!(binary_ty(BinOp::Div, Ty::Int, Ty::Int), Ty::Float);
        assert_eq!(binary_ty(BinOp::Add, Ty::Text, Ty::Text), Ty::Text);
        assert_eq!(binary_ty(BinOp::Sub, Ty::Text, Ty::Int), Ty::Bottom);
        assert_eq!(binary_ty(BinOp::Pow, Ty::Int, Ty::Int), Ty::Top);
    }

    #[test]
    fn nullness_proves_constants_and_copies_only() {
        let p = udf(
            &["x"],
            vec![
                Stmt::Assign { target: "n".into(), expr: Expr::Int(5) },
                Stmt::Assign { target: "m".into(), expr: Expr::name("n") },
                Stmt::Return(Expr::name("m")),
            ],
        );
        let dom = NullDomain::new(&p);
        let (f, slot) = at_return(&p, &dom);
        assert_eq!(f[slot as usize], Nullness::NonNull, "copied constant is non-null");
        assert_eq!(
            f[p.slots.slot_of("x").unwrap() as usize],
            Nullness::Maybe,
            "params may be NULL"
        );
    }

    #[test]
    fn intervals_propagate_singletons_and_widen_loops() {
        let p = udf(
            &["x"],
            vec![
                Stmt::Assign { target: "n".into(), expr: Expr::Int(12) },
                Stmt::Return(Expr::name("n")),
            ],
        );
        let dom = IntervalDomain::new(&p);
        let (f, slot) = at_return(&p, &dom);
        assert_eq!(f[slot as usize], Itv::singleton(12));
        // A loop-carried increment widens instead of iterating 2^63 times.
        let p = udf(
            &["x"],
            vec![
                Stmt::Assign { target: "z".into(), expr: Expr::Int(0) },
                Stmt::While {
                    cond: Expr::cmp(CmpOp::Lt, Expr::name("z"), Expr::name("x")),
                    body: vec![Stmt::Assign {
                        target: "z".into(),
                        expr: Expr::bin(crate::ast::BinOp::Add, Expr::name("z"), Expr::Int(1)),
                    }],
                },
                Stmt::Return(Expr::name("z")),
            ],
        );
        let dom = IntervalDomain::new(&p);
        // The solve must terminate (widening) and the loop-carried counter
        // must not stay a singleton; after the widened bound hits i64::MAX
        // the `+ 1` corner overflows, so Top is the sound fixpoint.
        let (f, slot) = at_return(&p, &dom);
        assert!(
            matches!(f[slot as usize], Itv::Top | Itv::Range { lo: _, hi: i64::MAX }),
            "expected a widened fact, got {:?}",
            f[slot as usize]
        );
        // Checked corners: an overflowing multiply degrades to Top.
        assert_eq!(binary_itv(BinOp::Mul, Itv::singleton(i64::MAX), Itv::singleton(2)), Itv::Top);
        assert_eq!(binary_itv(BinOp::Add, Itv::singleton(3), Itv::singleton(4)), Itv::singleton(7));
        assert_eq!(binary_itv(BinOp::Div, Itv::Top, Itv::Top), Itv::Never);
    }
}
