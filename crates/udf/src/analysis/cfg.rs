//! Basic-block control-flow graph over the bytecode instruction stream.
//!
//! Leaders are the entry (pc 0), every jump target and every instruction
//! after a branch/return; blocks are the maximal straight-line runs between
//! leaders. Construction is total over *arbitrary* (possibly corrupted)
//! programs: an out-of-bounds jump target or a path that can fall off the
//! end of the instruction vector is reported as an `Err` with the offending
//! pc, never a panic — the verifier turns these into typed errors.

use crate::bytecode::{Instr, Program};

/// Which outgoing edge of an instruction a successor sits on.
///
/// The distinction matters to edge-sensitive dataflow transfers:
/// [`Instr::ForNext`] binds the loop variable only when the loop *continues*
/// (its [`EdgeKind::Next`] edge), not on the exit jump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Fall through to `pc + 1` (a conditional branch not taken, a `ForNext`
    /// entering the loop body, or ordinary sequential flow).
    Next,
    /// The taken jump edge (unconditional jumps, taken conditionals, the
    /// `ForNext` exit).
    Branch,
}

/// One basic block: the half-open instruction range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    /// First instruction (a leader).
    pub start: usize,
    /// One past the last instruction (the terminator is `end - 1`).
    pub end: usize,
}

impl Block {
    /// Iterate the block's instruction indices.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }

    /// The block's terminator pc (its last instruction).
    pub fn terminator(&self) -> usize {
        self.end - 1
    }
}

/// Basic-block CFG of one [`Program`], with per-edge kinds.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Blocks in instruction order; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// `succs[b]` — successor blocks of `b` with the edge kind they sit on.
    pub succs: Vec<Vec<(usize, EdgeKind)>>,
    /// `preds[b]` — predecessor blocks of `b`.
    pub preds: Vec<Vec<usize>>,
    block_of: Vec<usize>,
}

impl Cfg {
    /// Build the CFG, validating control flow as it goes: every jump target
    /// must be inside the program and no instruction may fall through past
    /// the end (i.e. every path ends in a `Return`/`ReturnNull` or loops).
    pub fn build(prog: &Program) -> Result<Cfg, String> {
        let n = prog.instrs.len();
        if n == 0 {
            return Err("program has no instructions".to_string());
        }
        let check = |pc: usize, target: u32| -> Result<usize, String> {
            let t = target as usize;
            if t < n {
                Ok(t)
            } else {
                Err(format!("pc {pc}: jump target {t} out of bounds ({n} instructions)"))
            }
        };
        let mut leader = vec![false; n];
        leader[0] = true;
        let mut mark = |pc: usize| {
            if pc < n {
                leader[pc] = true;
            }
        };
        for (pc, instr) in prog.instrs.iter().enumerate() {
            match instr {
                Instr::Jump { target } => {
                    mark(check(pc, *target)?);
                    mark(pc + 1);
                }
                Instr::JumpIfFalse { target, .. } | Instr::JumpIfTrue { target, .. } => {
                    mark(check(pc, *target)?);
                    mark(pc + 1);
                }
                Instr::ForNext { exit, .. } => {
                    mark(check(pc, *exit)?);
                    mark(pc + 1);
                }
                Instr::Return { .. } | Instr::ReturnNull => mark(pc + 1),
                _ => {}
            }
            // Everything except an unconditional transfer falls through to
            // `pc + 1`; at the last instruction that is past the end.
            let falls_through =
                !matches!(instr, Instr::Jump { .. } | Instr::Return { .. } | Instr::ReturnNull);
            if falls_through && pc + 1 == n {
                return Err(format!("pc {pc}: control can fall off the end of the program"));
            }
        }
        let mut blocks = Vec::new();
        let mut block_of = vec![0usize; n];
        let mut start = 0usize;
        for (pc, &is_leader) in leader.iter().enumerate().skip(1) {
            if is_leader {
                let id = blocks.len();
                blocks.push(Block { start, end: pc });
                block_of[start..pc].fill(id);
                start = pc;
            }
        }
        let id = blocks.len();
        blocks.push(Block { start, end: n });
        block_of[start..n].fill(id);
        let mut succs: Vec<Vec<(usize, EdgeKind)>> = vec![Vec::new(); blocks.len()];
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); blocks.len()];
        for (b, blk) in blocks.iter().enumerate() {
            let pc = blk.terminator();
            let mut edges: Vec<(usize, EdgeKind)> = Vec::with_capacity(2);
            match &prog.instrs[pc] {
                Instr::Jump { target } => {
                    edges.push((block_of[*target as usize], EdgeKind::Branch))
                }
                Instr::JumpIfFalse { target, .. } | Instr::JumpIfTrue { target, .. } => {
                    edges.push((block_of[pc + 1], EdgeKind::Next));
                    edges.push((block_of[*target as usize], EdgeKind::Branch));
                }
                Instr::ForNext { exit, .. } => {
                    edges.push((block_of[pc + 1], EdgeKind::Next));
                    edges.push((block_of[*exit as usize], EdgeKind::Branch));
                }
                Instr::Return { .. } | Instr::ReturnNull => {}
                // Any other terminator falls through into the next leader
                // (`pc + 1 < n` was checked above).
                _ => edges.push((block_of[pc + 1], EdgeKind::Next)),
            }
            for &(s, _) in &edges {
                preds[s].push(b);
            }
            succs[b] = edges;
        }
        Ok(Cfg { blocks, succs, preds, block_of })
    }

    /// Block containing instruction `pc`.
    pub fn block_of(&self, pc: usize) -> usize {
        self.block_of[pc]
    }

    /// Reachable blocks in reverse postorder (entry first). Unreachable
    /// blocks are absent.
    pub fn rpo(&self) -> Vec<usize> {
        let nb = self.blocks.len();
        let mut state = vec![0u8; nb]; // 0 unvisited, 1 on stack, 2 done
        let mut post = Vec::with_capacity(nb);
        // Iterative DFS with an explicit (block, next-successor) stack.
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        state[0] = 1;
        while let Some(top) = stack.last_mut() {
            let b = top.0;
            if let Some(&(s, _)) = self.succs[b].get(top.1) {
                top.1 += 1;
                if state[s] == 0 {
                    state[s] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b] = 2;
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Immediate dominators (`idoms[b]`), computed with the iterative
    /// Cooper–Harvey–Kennedy algorithm over the reverse postorder. The entry
    /// block is its own idom; unreachable blocks get `None`.
    pub fn idoms(&self) -> Vec<Option<usize>> {
        let rpo = self.rpo();
        let mut order = vec![usize::MAX; self.blocks.len()];
        for (i, &b) in rpo.iter().enumerate() {
            order[b] = i;
        }
        let mut idom: Vec<Option<usize>> = vec![None; self.blocks.len()];
        idom[0] = Some(0);
        let intersect = |idom: &[Option<usize>], mut a: usize, mut b: usize| -> usize {
            while a != b {
                while order[a] > order[b] {
                    a = idom[a].expect("processed block has an idom");
                }
                while order[b] > order[a] {
                    b = idom[b].expect("processed block has an idom");
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom = None;
                for &p in &self.preds[b] {
                    if idom[p].is_none() {
                        continue; // unreachable, or not processed yet
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, p, cur),
                    });
                }
                if new_idom.is_some() && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }
        idom
    }

    /// Whether block `a` dominates block `b` (both must be reachable).
    pub fn dominates(&self, idoms: &[Option<usize>], a: usize, b: usize) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match idoms[cur] {
                Some(d) if d != cur => cur = d,
                _ => return false, // reached the entry (its own idom) or unreachable
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CmpOp, Expr, Stmt, UdfDef};
    use crate::bytecode::compile;

    fn branchy() -> Program {
        let u = UdfDef {
            name: "f".into(),
            params: vec!["x".into()],
            body: vec![
                Stmt::If {
                    cond: Expr::cmp(CmpOp::Lt, Expr::name("x"), Expr::Int(0)),
                    then_body: vec![Stmt::Assign { target: "z".into(), expr: Expr::Int(1) }],
                    else_body: vec![Stmt::Assign { target: "z".into(), expr: Expr::Int(2) }],
                },
                Stmt::Return(Expr::name("z")),
            ],
        };
        compile(&u).unwrap()
    }

    #[test]
    fn blocks_partition_the_program_and_entry_dominates_all() {
        let p = branchy();
        let cfg = Cfg::build(&p).unwrap();
        // Blocks tile [0, n) without gaps or overlaps.
        let mut pc = 0;
        for b in &cfg.blocks {
            assert_eq!(b.start, pc);
            assert!(b.end > b.start);
            pc = b.end;
        }
        assert_eq!(pc, p.instrs.len());
        // An if/else diamond: at least 4 blocks, entry reaches all of them.
        assert!(cfg.blocks.len() >= 4, "expected a diamond, got {} blocks", cfg.blocks.len());
        let idoms = cfg.idoms();
        for b in cfg.rpo() {
            assert!(cfg.dominates(&idoms, 0, b), "entry must dominate block {b}");
        }
        // The then/else arms do NOT dominate the join block.
        let rpo = cfg.rpo();
        let join = *rpo.last().unwrap();
        let arms: Vec<usize> = rpo
            .iter()
            .copied()
            .filter(|&b| b != 0 && b != join && !cfg.succs[b].is_empty())
            .collect();
        for a in arms {
            if cfg.succs[a].iter().any(|&(s, _)| s == join) && cfg.preds[join].len() > 1 {
                assert!(!cfg.dominates(&idoms, a, join), "arm {a} must not dominate the join");
            }
        }
    }

    #[test]
    fn corrupt_targets_and_missing_returns_are_reported_not_panicked() {
        let mut p = branchy();
        let n = p.instrs.len();
        // Out-of-bounds jump.
        for (pc, i) in p.instrs.iter_mut().enumerate() {
            if let Instr::JumpIfFalse { target, .. } = i {
                *target = 10_000;
                let err = Cfg::build(&p).unwrap_err();
                assert!(err.contains(&format!("pc {pc}")), "{err}");
                assert!(err.contains("out of bounds"), "{err}");
                break;
            }
        }
        // Dropped trailing return → fall off the end.
        let mut p = branchy();
        p.instrs[n - 1] = Instr::Cost(crate::bytecode::CostKind::Stmt);
        let err = Cfg::build(&p).unwrap_err();
        assert!(err.contains("fall off the end"), "{err}");
        // Empty program.
        p.instrs.clear();
        assert!(Cfg::build(&p).unwrap_err().contains("no instructions"));
    }
}
