//! Forward dataflow over the basic-block CFG: a worklist solver generic
//! over any join-semilattice domain.
//!
//! A [`Domain`] supplies the lattice (entry fact, join) and the transfer
//! functions (per instruction, plus an optional per-*edge* refinement for
//! instructions whose effect differs between their outgoing edges — the
//! canonical case being [`Instr::ForNext`], which binds the loop variable
//! only when the loop continues). The solver iterates blocks in reverse
//! postorder until the block-entry facts reach a fixpoint; termination
//! follows from join monotonicity plus finite ascending chains (the interval
//! domain widens inside its `join` to bound its chains).
//!
//! "Unreachable" is represented *outside* the domain: a block whose entry
//! fact is still `None` was never reached, so domains never need an explicit
//! bottom-of-everything element.

use super::cfg::{Cfg, EdgeKind};
use crate::bytecode::{Instr, Program};

/// A forward join-semilattice dataflow domain.
pub trait Domain {
    /// The per-program-point fact (typically one lattice element per
    /// register).
    type Fact: Clone + PartialEq;

    /// Fact holding at the program entry (parameters initialized, etc.).
    fn entry(&self) -> Self::Fact;

    /// Join `other` into `fact` (least upper bound, possibly widened).
    /// Returns whether `fact` changed. Must be monotone: joining can only
    /// move facts up the lattice.
    fn join(&self, fact: &mut Self::Fact, other: &Self::Fact) -> bool;

    /// Effect of executing `instr` — the part common to all outgoing edges.
    fn transfer(&self, instr: &Instr, fact: &mut Self::Fact);

    /// Edge-specific refinement applied *after* [`Domain::transfer`] along
    /// one outgoing edge of a block terminator. The default is a no-op.
    fn refine(&self, instr: &Instr, edge: EdgeKind, fact: &mut Self::Fact) {
        let _ = (instr, edge, fact);
    }
}

/// Fixpoint of one solve: the fact at each **block entry**.
#[derive(Debug, Clone)]
pub struct Solution<F> {
    /// `block_in[b]` — fact on entry to block `b`; `None` means the solver
    /// never reached the block (dataflow bottom).
    pub block_in: Vec<Option<F>>,
}

/// Run the worklist solver for `dom` over `prog`'s CFG.
pub fn solve<D: Domain>(cfg: &Cfg, prog: &Program, dom: &D) -> Solution<D::Fact> {
    let nb = cfg.blocks.len();
    let mut block_in: Vec<Option<D::Fact>> = vec![None; nb];
    block_in[0] = Some(dom.entry());
    // Process in RPO positions for fast convergence; a simple dedup'd queue.
    let mut queued = vec![false; nb];
    let mut work = std::collections::VecDeque::with_capacity(nb);
    work.push_back(0usize);
    queued[0] = true;
    while let Some(b) = work.pop_front() {
        queued[b] = false;
        let Some(in_fact) = block_in[b].clone() else { continue };
        let mut out = in_fact;
        let blk = cfg.blocks[b];
        for pc in blk.range() {
            dom.transfer(&prog.instrs[pc], &mut out);
        }
        let term = &prog.instrs[blk.terminator()];
        for &(succ, kind) in &cfg.succs[b] {
            let mut f = out.clone();
            dom.refine(term, kind, &mut f);
            let changed = match &mut block_in[succ] {
                Some(cur) => dom.join(cur, &f),
                slot @ None => {
                    *slot = Some(f);
                    true
                }
            };
            if changed && !queued[succ] {
                queued[succ] = true;
                work.push_back(succ);
            }
        }
    }
    Solution { block_in }
}

/// Expand a block-level [`Solution`] to per-instruction entry facts:
/// `result[pc]` is the fact holding **before** `prog.instrs[pc]` executes,
/// `None` for unreachable instructions.
pub fn per_instr_facts<D: Domain>(
    cfg: &Cfg,
    prog: &Program,
    dom: &D,
    sol: &Solution<D::Fact>,
) -> Vec<Option<D::Fact>> {
    let mut out: Vec<Option<D::Fact>> = vec![None; prog.instrs.len()];
    for (b, blk) in cfg.blocks.iter().enumerate() {
        let Some(in_fact) = &sol.block_in[b] else { continue };
        let mut f = in_fact.clone();
        for pc in blk.range() {
            out[pc] = Some(f.clone());
            dom.transfer(&prog.instrs[pc], &mut f);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, CmpOp, Expr, Stmt, UdfDef};
    use crate::bytecode::compile;

    /// A toy domain counting an upper bound of executed `Cost` markers,
    /// saturating at 7 — enough to exercise join/fixpoint plumbing without
    /// the real domains.
    struct CostCount;
    impl Domain for CostCount {
        type Fact = u8;
        fn entry(&self) -> u8 {
            0
        }
        fn join(&self, fact: &mut u8, other: &u8) -> bool {
            let new = (*fact).max(*other);
            let changed = new != *fact;
            *fact = new;
            changed
        }
        fn transfer(&self, instr: &Instr, fact: &mut u8) {
            if matches!(instr, Instr::Cost(_)) {
                *fact = (*fact + 1).min(7);
            }
        }
    }

    #[test]
    fn solver_reaches_a_fixpoint_on_loopy_programs() {
        let u = UdfDef {
            name: "f".into(),
            params: vec!["x".into()],
            body: vec![
                Stmt::While {
                    cond: Expr::cmp(CmpOp::Lt, Expr::name("x"), Expr::Int(3)),
                    body: vec![Stmt::Assign {
                        target: "x".into(),
                        expr: Expr::bin(BinOp::Add, Expr::name("x"), Expr::Int(1)),
                    }],
                },
                Stmt::Return(Expr::name("x")),
            ],
        };
        let p = compile(&u).unwrap();
        let cfg = Cfg::build(&p).unwrap();
        let sol = solve(&cfg, &p, &CostCount);
        // Every reachable block got a fact, and the back edge pushed the
        // loop head to the saturated bound.
        for b in cfg.rpo() {
            assert!(sol.block_in[b].is_some(), "reachable block {b} unsolved");
        }
        let facts = per_instr_facts(&cfg, &p, &CostCount, &sol);
        assert!(facts.iter().flatten().any(|&f| f == 7), "loop joins saturate the counter");
    }
}
