//! Constant trip-count analysis for `for` loops.
//!
//! A `for i in range(n)` loop lowers to a `ForInit`/`ForNext` pair. When the
//! analysis can prove `n` is one specific non-NULL integer on **every** path
//! reaching the `ForInit` — either a literal operand or a register pinned by
//! the combination of the type, null-ness and interval domains — the loop's
//! iteration structure is data-independent: every row executes exactly `n`
//! iterations. [`Program::simd_shape`](crate::bytecode::Program::simd_shape)
//! uses this to reclassify such loops from
//! [`InstrClass::Bail`](crate::bytecode::InstrClass::Bail) (scalar per-row
//! fallback) into [`InstrClass::Counted`](crate::bytecode::InstrClass::Counted)
//! segments the columnar executor unrolls across the whole lane block,
//! replaying the per-iteration cost charges so values *and*
//! [`CostCounter`](crate::costs::CostCounter) totals stay bit-identical with
//! the tree-walker and the VM.
//!
//! All three conditions on a register-sourced limit are necessary:
//!
//! - **interval singleton** `[n, n]` pins the value *when it is an `Int`*,
//! - **type = Int** rules out a `Float` (or `Text`) limit that the interval
//!   domain's conditional claim says nothing about,
//! - **non-NULL** rules out a NULL limit (`range(NULL)` iterates zero times,
//!   which `n > 0` would mispredict).
//!
//! The executor additionally re-checks the limit lanes at run time (uniform
//! non-null `Int` scan), so a bug here degrades to a bail-out, never to a
//! wrong answer — the differential property suite keeps both layers honest.

use super::cfg::Cfg;
use super::dataflow::{per_instr_facts, solve};
use super::domains::{IntervalDomain, Itv, NullDomain, Nullness, Ty, TypeDomain};
use crate::bytecode::{Instr, Program};
use graceful_storage::Value;

/// Largest trip count eligible for SIMD widening. Beyond this, unrolling a
/// whole lane block per iteration stops paying for itself against the
/// batch VM (each iteration replays every body instruction across the
/// block), so larger loops stay on the scalar fallback.
pub const MAX_COUNTED_TRIPS: i64 = 64;

/// Per-instruction constant trip counts: `out[pc]` is `Some(n)` iff `pc` is
/// a `ForInit` or `ForNext` of a loop proven to run exactly `n` iterations
/// for every row, with `n <= `[`MAX_COUNTED_TRIPS`]. Corrupt programs (the
/// CFG fails to build) yield all-`None` — trip counts are an optimization,
/// not a soundness gate, and the verifier reports the corruption separately.
pub fn trip_counts(prog: &Program) -> Vec<Option<u32>> {
    let mut out = vec![None; prog.instrs.len()];
    let has_for = prog.instrs.iter().any(|i| matches!(i, Instr::ForInit { .. }));
    if !has_for {
        return out;
    }
    let Ok(cfg) = Cfg::build(prog) else {
        return out;
    };
    // Lazily priced: three dataflow solves, only for programs with `for`
    // loops (compile-time, once per UDF).
    let ty_dom = TypeDomain::new(prog);
    let ty = per_instr_facts(&cfg, prog, &ty_dom, &solve(&cfg, prog, &ty_dom));
    let null_dom = NullDomain::new(prog);
    let nl = per_instr_facts(&cfg, prog, &null_dom, &solve(&cfg, prog, &null_dom));
    let itv_dom = IntervalDomain::new(prog);
    let iv = per_instr_facts(&cfg, prog, &itv_dom, &solve(&cfg, prog, &itv_dom));

    for pc in 0..prog.instrs.len() {
        let Instr::ForInit { counter, limit, src } = &prog.instrs[pc] else { continue };
        // The verifier guarantees this pairing; re-check so the analysis is
        // total over arbitrary programs.
        let paired = matches!(
            prog.instrs.get(pc + 1),
            Some(Instr::ForNext { counter: c, limit: l, .. }) if c == counter && l == limit
        );
        if !paired {
            continue;
        }
        let n = if src.is_const() {
            match prog.consts.get(src.index()) {
                Some(Value::Int(n)) => Some(*n),
                _ => None, // Float/Text/NULL literals are not counted
            }
        } else {
            let r = src.index();
            let ty_ok = matches!(ty[pc].as_ref().and_then(|f| f.get(r)), Some(Ty::Int));
            let null_ok = matches!(nl[pc].as_ref().and_then(|f| f.get(r)), Some(Nullness::NonNull));
            match (ty_ok && null_ok, iv[pc].as_ref().and_then(|f| f.get(r))) {
                (true, Some(Itv::Range { lo, hi })) if lo == hi => Some(*lo),
                _ => None,
            }
        };
        // `ForInit` clamps negative limits to zero trips.
        if let Some(n) = n.map(|n| n.max(0)) {
            if n <= MAX_COUNTED_TRIPS {
                out[pc] = Some(n as u32);
                out[pc + 1] = Some(n as u32);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, CmpOp, Expr, Stmt, UdfDef};
    use crate::bytecode::compile;

    fn loop_udf(count: Expr, prefix: Vec<Stmt>) -> Program {
        let mut body = prefix;
        body.push(Stmt::For {
            var: "i".into(),
            count,
            body: vec![Stmt::Assign {
                target: "z".into(),
                expr: Expr::bin(BinOp::Add, Expr::name("i"), Expr::name("x")),
            }],
        });
        body.push(Stmt::Return(Expr::name("z")));
        let u = UdfDef { name: "f".into(), params: vec!["x".into()], body };
        compile(&u).unwrap()
    }

    fn the_trip(p: &Program) -> Option<u32> {
        let t = trip_counts(p);
        let pc = p.instrs.iter().position(|i| matches!(i, Instr::ForInit { .. })).unwrap();
        assert_eq!(t[pc], t[pc + 1], "ForInit and ForNext agree");
        t[pc]
    }

    #[test]
    fn literal_and_copied_constant_limits_are_counted() {
        assert_eq!(the_trip(&loop_udf(Expr::Int(12), vec![])), Some(12));
        assert_eq!(the_trip(&loop_udf(Expr::Int(0), vec![])), Some(0));
        assert_eq!(the_trip(&loop_udf(Expr::Int(-3), vec![])), Some(0), "negative clamps to 0");
        // n = 7; for i in range(n) — flows through the interval domain.
        let p = loop_udf(
            Expr::name("n"),
            vec![Stmt::Assign { target: "n".into(), expr: Expr::Int(7) }],
        );
        assert_eq!(the_trip(&p), Some(7));
    }

    #[test]
    fn data_dependent_oversized_and_non_int_limits_are_not() {
        // range(x): parameter-dependent.
        assert_eq!(the_trip(&loop_udf(Expr::name("x"), vec![])), None);
        // range(65): provable but past the widening payoff bound.
        assert_eq!(the_trip(&loop_udf(Expr::Int(MAX_COUNTED_TRIPS + 1), vec![])), None);
        assert_eq!(the_trip(&loop_udf(Expr::Int(MAX_COUNTED_TRIPS), vec![])), Some(64));
        // range(2.5): Float literal limit — `int(...)` at runtime, skip.
        assert_eq!(the_trip(&loop_udf(Expr::Float(2.5), vec![])), None);
        // n reassigned on one arm: not a singleton at the loop.
        let p = loop_udf(
            Expr::name("n"),
            vec![
                Stmt::Assign { target: "n".into(), expr: Expr::Int(2) },
                Stmt::If {
                    cond: Expr::cmp(CmpOp::Lt, Expr::name("x"), Expr::Int(0)),
                    then_body: vec![Stmt::Assign { target: "n".into(), expr: Expr::Int(5) }],
                    else_body: vec![],
                },
            ],
        );
        assert_eq!(the_trip(&p), None);
    }
}
