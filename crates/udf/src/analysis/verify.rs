//! Bytecode verifier: every structural invariant the backends trust,
//! checked.
//!
//! The VM and the SIMD executor index registers, constants and jump targets
//! straight out of the [`Program`] — a compiler bug there would surface as a
//! release-mode panic, silent garbage, or backend-divergent cost totals.
//! Under the default `GRACEFUL_VERIFY=strict` every
//! [`compile`](crate::bytecode::compile) result passes through
//! [`verify`] first, so a violated invariant becomes a typed
//! [`GracefulError::Verify`] at compile time instead. The checks, in order:
//!
//! 1. **Bounds** — every register (including call windows) is inside the
//!    register file, every constant-pool index resolves, and the register
//!    file covers the slot table.
//! 2. **Control flow** — [`Cfg::build`] rejects out-of-bounds jump targets
//!    and any path that can fall off the end of the instruction vector
//!    ("return on all paths").
//! 3. **Definite initialization** — no instruction reads a register that
//!    some path leaves unwritten (the [`DefiniteInit`] dataflow domain;
//!    runtime [`Instr::CheckDef`] guards count as definitions because the VM
//!    errors the row out before any fall-through).
//! 4. **Cost placement** — the cost markers that keep the three backends'
//!    [`CostCounter`](crate::costs::CostCounter) totals bit-identical sit
//!    exactly where the tree-walker charges them: `Cost(Assign)` fused to
//!    its `MarkDef`, `Cost(Branch)` to its conditional jump, `Cost(Compare)`
//!    to its `CastBool`.
//! 5. **Loop pairing** — every `ForInit` is immediately followed by its
//!    `ForNext` (same counter and limit registers), the layout both the VM
//!    dispatch and trip-count analysis rely on.

use super::cfg::Cfg;
use super::dataflow::{per_instr_facts, solve};
use super::domains::DefiniteInit;
use crate::bytecode::{CostKind, Instr, Operand, Program};
use graceful_common::GracefulError;

fn err(prog: &Program, msg: String) -> GracefulError {
    GracefulError::Verify(format!("{}: {msg}", prog.name))
}

/// Registers `instr` reads, appended to `out` (constant operands excluded).
fn read_regs(instr: &Instr, out: &mut Vec<u16>) {
    let mut op = |o: &Operand| {
        if !o.is_const() {
            out.push(o.index() as u16);
        }
    };
    match instr {
        Instr::Copy { src, .. } | Instr::CastBool { src, .. } | Instr::Unary { src, .. } => op(src),
        Instr::Binary { l, r, .. } | Instr::Compare { l, r, .. } => {
            op(l);
            op(r);
        }
        Instr::Call { base, n_args, has_recv, .. } => {
            let total = *n_args as u16 + *has_recv as u16;
            for r in *base..base.saturating_add(total) {
                out.push(r);
            }
        }
        Instr::JumpIfFalse { cond, .. } | Instr::JumpIfTrue { cond, .. } => op(cond),
        Instr::ForInit { src, .. } => op(src),
        Instr::ForNext { counter, limit, .. } => {
            out.push(*counter);
            out.push(*limit);
        }
        Instr::WhileIter { counter } => out.push(*counter),
        Instr::Return { src } => op(src),
        // CheckDef is the runtime definedness guard itself; MarkDef and the
        // rest read nothing.
        Instr::CheckDef { .. }
        | Instr::MarkDef { .. }
        | Instr::WhileInit { .. }
        | Instr::Jump { .. }
        | Instr::Cost(_)
        | Instr::ReturnNull => {}
    }
}

/// Registers `instr` writes, appended to `out`.
fn write_regs(instr: &Instr, out: &mut Vec<u16>) {
    match instr {
        Instr::Copy { dst, .. }
        | Instr::Unary { dst, .. }
        | Instr::Binary { dst, .. }
        | Instr::Compare { dst, .. }
        | Instr::CastBool { dst, .. }
        | Instr::Call { dst, .. } => out.push(*dst),
        Instr::ForInit { counter, limit, .. } => {
            out.push(*counter);
            out.push(*limit);
        }
        Instr::ForNext { counter, var_slot, .. } => {
            out.push(*counter);
            out.push(*var_slot);
        }
        Instr::WhileInit { counter } | Instr::WhileIter { counter } => out.push(*counter),
        Instr::CheckDef { slot } | Instr::MarkDef { slot } => out.push(*slot),
        Instr::Jump { .. }
        | Instr::JumpIfFalse { .. }
        | Instr::JumpIfTrue { .. }
        | Instr::Cost(_)
        | Instr::Return { .. }
        | Instr::ReturnNull => {}
    }
}

/// Constant-pool indices `instr` references, appended to `out`.
fn const_idxs(instr: &Instr, out: &mut Vec<usize>) {
    let mut op = |o: &Operand| {
        if o.is_const() {
            out.push(o.index());
        }
    };
    match instr {
        Instr::Copy { src, .. } | Instr::CastBool { src, .. } | Instr::Unary { src, .. } => op(src),
        Instr::Binary { l, r, .. } | Instr::Compare { l, r, .. } => {
            op(l);
            op(r);
        }
        Instr::JumpIfFalse { cond, .. } | Instr::JumpIfTrue { cond, .. } => op(cond),
        Instr::ForInit { src, .. } => op(src),
        Instr::Return { src } => op(src),
        _ => {}
    }
}

/// Human label for a register: its slot name when it is a named slot, its
/// index otherwise (temporaries).
fn reg_label(prog: &Program, r: u16) -> String {
    match prog.slots.names().get(r as usize) {
        Some(name) => format!("r{r} (`{name}`)"),
        None => format!("r{r}"),
    }
}

fn check_bounds(prog: &Program) -> Result<(), GracefulError> {
    let n_regs = prog.n_regs as usize;
    let n_consts = prog.consts.len();
    if n_regs < prog.slots.len() {
        return Err(err(
            prog,
            format!(
                "register file ({n_regs}) does not cover the slot table ({} slots)",
                prog.slots.len()
            ),
        ));
    }
    let mut regs = Vec::with_capacity(8);
    let mut consts = Vec::with_capacity(4);
    for (pc, instr) in prog.instrs.iter().enumerate() {
        regs.clear();
        consts.clear();
        read_regs(instr, &mut regs);
        write_regs(instr, &mut regs);
        const_idxs(instr, &mut consts);
        if let Some(&r) = regs.iter().find(|&&r| r as usize >= n_regs) {
            return Err(err(
                prog,
                format!("pc {pc}: register r{r} out of bounds ({n_regs} registers)"),
            ));
        }
        if let Some(&c) = consts.iter().find(|&&c| c >= n_consts) {
            return Err(err(
                prog,
                format!("pc {pc}: constant index {c} out of bounds ({n_consts} constants)"),
            ));
        }
        // The call window must also fit as a whole (an empty window at the
        // end of the file is fine; `read_regs` covers the occupied slots).
        if let Instr::Call { base, n_args, has_recv, .. } = instr {
            let end = *base as usize + *n_args as usize + *has_recv as usize;
            if end > n_regs {
                return Err(err(
                    prog,
                    format!("pc {pc}: call argument window r{base}..r{end} out of bounds"),
                ));
            }
        }
    }
    Ok(())
}

fn check_definite_init(prog: &Program, cfg: &Cfg) -> Result<(), GracefulError> {
    let dom = DefiniteInit::new(prog);
    let sol = solve(cfg, prog, &dom);
    let facts = per_instr_facts(cfg, prog, &dom, &sol);
    let mut reads = Vec::with_capacity(8);
    for (pc, instr) in prog.instrs.iter().enumerate() {
        let Some(fact) = &facts[pc] else { continue }; // unreachable instruction
        reads.clear();
        read_regs(instr, &mut reads);
        for &r in &reads {
            if !fact.get(r as usize).copied().unwrap_or(false) {
                return Err(err(
                    prog,
                    format!("pc {pc}: {} may be read before it is written", reg_label(prog, r)),
                ));
            }
        }
    }
    Ok(())
}

/// Cost markers must sit exactly where the tree-walker charges: the three
/// backends replay these markers, so a drifted marker silently breaks cost
/// parity rather than crashing.
fn check_cost_placement(prog: &Program) -> Result<(), GracefulError> {
    for (pc, instr) in prog.instrs.iter().enumerate() {
        let next = prog.instrs.get(pc + 1);
        match instr {
            Instr::Cost(CostKind::Assign) if !matches!(next, Some(Instr::MarkDef { .. })) => {
                return Err(err(prog, format!("pc {pc}: Cost(Assign) not fused to a MarkDef")));
            }
            Instr::Cost(CostKind::Branch)
                if !matches!(next, Some(Instr::JumpIfFalse { .. } | Instr::JumpIfTrue { .. })) =>
            {
                return Err(err(
                    prog,
                    format!("pc {pc}: Cost(Branch) not fused to a conditional jump"),
                ));
            }
            Instr::Cost(CostKind::Compare) if !matches!(next, Some(Instr::CastBool { .. })) => {
                return Err(err(prog, format!("pc {pc}: Cost(Compare) not fused to a CastBool")));
            }
            // A MarkDef without its Cost(Assign) under-charges assignments.
            Instr::MarkDef { .. } => {
                let prev = pc.checked_sub(1).and_then(|p| prog.instrs.get(p));
                if !matches!(prev, Some(Instr::Cost(CostKind::Assign))) {
                    return Err(err(
                        prog,
                        format!("pc {pc}: MarkDef not preceded by Cost(Assign)"),
                    ));
                }
            }
            _ => {}
        }
    }
    Ok(())
}

/// `ForInit` at `pc` pairs with `ForNext` at `pc + 1` over the same counter
/// and limit registers — the layout the VM's dispatch falls through and
/// trip-count analysis pattern-matches.
fn check_loop_pairing(prog: &Program) -> Result<(), GracefulError> {
    for (pc, instr) in prog.instrs.iter().enumerate() {
        match instr {
            Instr::ForInit { counter, limit, .. } => match prog.instrs.get(pc + 1) {
                Some(Instr::ForNext { counter: c, limit: l, .. }) if c == counter && l == limit => {
                }
                _ => {
                    return Err(err(
                        prog,
                        format!("pc {pc}: ForInit not followed by its matching ForNext"),
                    ))
                }
            },
            Instr::ForNext { counter, limit, .. } => {
                let prev = pc.checked_sub(1).and_then(|p| prog.instrs.get(p));
                match prev {
                    Some(Instr::ForInit { counter: c, limit: l, .. })
                        if c == counter && l == limit => {}
                    _ => {
                        return Err(err(
                            prog,
                            format!("pc {pc}: ForNext not preceded by its matching ForInit"),
                        ))
                    }
                }
            }
            _ => {}
        }
    }
    Ok(())
}

/// Verify `prog` against every invariant above. `Ok(())` means the backends
/// can execute the program without trusting the compiler.
pub fn verify(prog: &Program) -> Result<(), GracefulError> {
    if prog.instrs.is_empty() {
        return Err(err(prog, "program has no instructions".to_string()));
    }
    check_bounds(prog)?;
    let cfg = Cfg::build(prog).map_err(|e| err(prog, e))?;
    // Cheap syntactic checks before the dataflow solve — and an unpaired
    // loop would otherwise surface as a confusing downstream
    // use-before-write diagnostic.
    check_cost_placement(prog)?;
    check_loop_pairing(prog)?;
    check_definite_init(prog, &cfg)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, CmpOp, Expr, Stmt, UdfDef};
    use crate::bytecode::compile;

    fn branchy() -> Program {
        let u = UdfDef {
            name: "f".into(),
            params: vec!["x".into()],
            body: vec![
                Stmt::If {
                    cond: Expr::cmp(CmpOp::Lt, Expr::name("x"), Expr::Int(0)),
                    then_body: vec![Stmt::Assign { target: "z".into(), expr: Expr::Int(1) }],
                    else_body: vec![],
                },
                Stmt::For {
                    var: "i".into(),
                    count: Expr::Int(3),
                    body: vec![Stmt::Assign {
                        target: "z".into(),
                        expr: Expr::bin(BinOp::Add, Expr::name("i"), Expr::Int(1)),
                    }],
                },
                Stmt::Return(Expr::name("z")),
            ],
        };
        compile(&u).unwrap()
    }

    fn expect_verify_err(p: &Program, needle: &str) {
        match verify(p) {
            Err(GracefulError::Verify(m)) => {
                assert!(m.contains(needle), "expected `{needle}` in: {m}")
            }
            other => panic!("expected Verify error mentioning `{needle}`, got {other:?}"),
        }
    }

    #[test]
    fn accepts_compiler_output() {
        verify(&branchy()).expect("compiled programs verify");
    }

    #[test]
    fn rejects_out_of_bounds_registers_and_consts() {
        let mut p = branchy();
        if let Instr::Copy { dst, .. } =
            p.instrs.iter_mut().find(|i| matches!(i, Instr::Copy { .. })).unwrap()
        {
            *dst = 999;
        }
        expect_verify_err(&p, "out of bounds");

        let mut p = branchy();
        for i in p.instrs.iter_mut() {
            if let Instr::Return { src } = i {
                *src = Operand::constant(999);
            }
        }
        expect_verify_err(&p, "constant index 999");
    }

    #[test]
    fn rejects_corrupt_control_flow() {
        let mut p = branchy();
        for i in p.instrs.iter_mut() {
            if let Instr::Jump { target } = i {
                *target = 40_000;
            }
        }
        expect_verify_err(&p, "out of bounds");

        // Dropping the trailing return lets control fall off the end.
        let mut p = branchy();
        let last = p.instrs.len() - 1;
        p.instrs[last] = Instr::Cost(CostKind::Stmt);
        expect_verify_err(&p, "fall off the end");
    }

    #[test]
    fn rejects_use_before_def_when_the_guard_is_removed() {
        // `z` is assigned on only one arm; the compiler guards the read with
        // CheckDef. Deleting that guard must trip definite-initialization.
        let mut p = branchy();
        let check = p
            .instrs
            .iter()
            .position(|i| matches!(i, Instr::CheckDef { .. }))
            .expect("branch-only assignment is guarded");
        p.instrs[check] = Instr::Cost(CostKind::Stmt);
        expect_verify_err(&p, "read before it is written");
        // The diagnostic names the variable.
        expect_verify_err(&p, "`z`");
    }

    #[test]
    fn rejects_drifted_cost_markers_and_unpaired_loops() {
        // Detach a Cost(Assign) from its MarkDef by swapping the pair.
        let mut p = branchy();
        let pc = p
            .instrs
            .iter()
            .position(|i| matches!(i, Instr::Cost(CostKind::Assign)))
            .expect("assignments charge");
        p.instrs.swap(pc, pc + 1);
        expect_verify_err(&p, "Cost(Assign)");

        // Orphan a ForNext by overwriting its ForInit.
        let mut p = branchy();
        let pc = p
            .instrs
            .iter()
            .position(|i| matches!(i, Instr::ForInit { .. }))
            .expect("program has a for loop");
        p.instrs[pc] = Instr::Cost(CostKind::Stmt);
        expect_verify_err(&p, "ForNext not preceded");
    }
}
