//! Bytecode compilation of UDFs: slot-resolved variables and a compact
//! register-based instruction set.
//!
//! The tree-walking interpreter re-walks the AST and resolves every variable
//! through its name for every row. This module performs that work **once per
//! UDF**: [`SlotTable`] assigns each variable a dense numeric slot, and
//! [`compile`] lowers the AST into a [`Program`] — a flat instruction vector
//! over a register file (variable slots first, expression temporaries after)
//! plus a constant pool. The batch VM in [`crate::vm`] then evaluates a
//! `Program` over many rows with zero per-row allocation.
//!
//! # Cost parity
//!
//! The instruction stream is arranged so that executing it performs exactly
//! the same sequence of [`CostCounter`](crate::costs::CostCounter) additions
//! as the tree-walker: dedicated [`Instr::Cost`] markers mirror the
//! per-statement / per-assign / per-branch / short-circuit charges, loop
//! instructions charge `loop_iter` at the same point in the iteration, and
//! all scalar arithmetic goes through the shared kernels in [`crate::ops`].
//! Identical sequence ⇒ bit-identical `f64` totals — which the differential
//! property suite asserts over the whole generated corpus.

use crate::ast::{Expr, Stmt, UdfDef, UnOp};
use crate::interp::MAX_WHILE_ITERS;
use crate::libfns::LibFn;
use graceful_common::config::VerifyMode;
use graceful_common::{GracefulError, Result};
use graceful_storage::Value;

/// Dense name → slot mapping for one UDF (parameters first, in order).
///
/// Shared by the bytecode compiler and the tree-walking interpreter, so both
/// backends agree on slot numbering and neither hashes variable names on the
/// per-row path. Lookup is a linear scan: UDFs in the paper's corpus have a
/// handful of variables, where scanning a dozen `&str`s beats hashing.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotTable {
    names: Vec<String>,
    n_params: usize,
}

impl SlotTable {
    /// Collect every variable the UDF can touch: parameters (slots `0..k` in
    /// declaration order), assignment targets, loop variables, and any name
    /// that is only ever *read* (so undefined-variable errors surface at
    /// evaluation time, exactly like the tree-walker).
    pub fn build(udf: &UdfDef) -> SlotTable {
        let mut names: Vec<String> = Vec::with_capacity(udf.params.len() + 4);
        for p in &udf.params {
            if !names.contains(p) {
                names.push(p.clone());
            }
        }
        let n_params = names.len();
        fn add(names: &mut Vec<String>, n: &str) {
            if !names.iter().any(|x| x == n) {
                names.push(n.to_string());
            }
        }
        fn walk_expr(names: &mut Vec<String>, e: &Expr) {
            let mut referenced = Vec::new();
            e.names(&mut referenced);
            for n in referenced {
                add(names, &n);
            }
        }
        fn walk(names: &mut Vec<String>, body: &[Stmt]) {
            for s in body {
                match s {
                    Stmt::Assign { target, expr } => {
                        walk_expr(names, expr);
                        add(names, target);
                    }
                    Stmt::If { cond, then_body, else_body } => {
                        walk_expr(names, cond);
                        walk(names, then_body);
                        walk(names, else_body);
                    }
                    Stmt::For { var, count, body } => {
                        walk_expr(names, count);
                        add(names, var);
                        walk(names, body);
                    }
                    Stmt::While { cond, body } => {
                        walk_expr(names, cond);
                        walk(names, body);
                    }
                    Stmt::Return(e) => walk_expr(names, e),
                }
            }
        }
        walk(&mut names, &udf.body);
        SlotTable { names, n_params }
    }

    /// Slot of `name`, if the UDF mentions it anywhere.
    pub fn slot_of(&self, name: &str) -> Option<u16> {
        self.names.iter().position(|n| n == name).map(|i| i as u16)
    }

    /// Number of slots (parameters + locals).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Number of parameter slots (`0..n_params` are the parameters).
    pub fn n_params(&self) -> usize {
        self.n_params
    }

    /// All slot names, indexed by slot.
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

/// An instruction operand: either a register or a constant-pool entry.
///
/// Encoded in one `u16`; the high bit selects the constant pool. Register
/// operands may point at variable slots directly, so reading a variable does
/// not copy it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Operand(u16);

const CONST_BIT: u16 = 1 << 15;

impl Operand {
    pub fn reg(r: u16) -> Operand {
        debug_assert!(r < CONST_BIT);
        Operand(r)
    }

    pub fn constant(idx: u16) -> Operand {
        debug_assert!(idx < CONST_BIT);
        Operand(idx | CONST_BIT)
    }

    #[inline]
    pub fn is_const(self) -> bool {
        self.0 & CONST_BIT != 0
    }

    #[inline]
    pub fn index(self) -> usize {
        (self.0 & !CONST_BIT) as usize
    }
}

/// Which fixed-rate cost a [`Instr::Cost`] marker charges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostKind {
    /// Per-statement dispatch (`add_stmt`).
    Stmt,
    /// Per-assignment store (`add_assign`).
    Assign,
    /// Per-`if` branch evaluation (`add_branch`).
    Branch,
    /// Short-circuit boolean evaluation (`add_compare`, matching the
    /// tree-walker's charge on `and` / `or`).
    Compare,
}

/// The register-based instruction set.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `regs[dst] = value(src)` (variable reads/writes, constant loads).
    Copy { dst: u16, src: Operand },
    /// Unary op; charges one (fast) arithmetic op.
    Unary { op: UnOp, dst: u16, src: Operand },
    /// Binary op via [`crate::ops::apply_binary`] (charges inside).
    Binary { op: crate::ast::BinOp, dst: u16, l: Operand, r: Operand },
    /// Comparison; charges one compare.
    Compare { op: crate::ast::CmpOp, dst: u16, l: Operand, r: Operand },
    /// `regs[dst] = Bool(value(src).truthy())` — boolean coercion for
    /// short-circuit results. Free, like the tree-walker's `truthy()`.
    CastBool { dst: u16, src: Operand },
    /// Library/builtin/method call. The receiver (if `has_recv`) and the
    /// arguments live in consecutive registers starting at `base`.
    Call { func: LibFn, dst: u16, base: u16, n_args: u8, has_recv: bool },
    /// Unconditional jump.
    Jump { target: u32 },
    /// Jump when `value(cond)` is falsy (NULL/0/empty are falsy).
    JumpIfFalse { cond: Operand, target: u32 },
    /// Jump when `value(cond)` is truthy.
    JumpIfTrue { cond: Operand, target: u32 },
    /// `for` prologue: clamp the trip count and zero the counter.
    ForInit { counter: u16, limit: u16, src: Operand },
    /// `for` loop head: exit when done, else charge an iteration, bind the
    /// loop variable and advance.
    ForNext { counter: u16, limit: u16, var_slot: u16, exit: u32 },
    /// `while` prologue: zero the iteration guard.
    WhileInit { counter: u16 },
    /// `while` body entry: charge an iteration and enforce
    /// [`MAX_WHILE_ITERS`] (typed [`GracefulError::IterationLimit`]).
    WhileIter { counter: u16 },
    /// Error if the variable slot has not been assigned yet this row.
    CheckDef { slot: u16 },
    /// Mark a variable slot as assigned.
    MarkDef { slot: u16 },
    /// Charge a fixed-rate cost (see [`CostKind`]).
    Cost(CostKind),
    /// Return `value(src)`.
    Return { src: Operand },
    /// Implicit `return None` at the end of the body.
    ReturnNull,
}

/// A compiled UDF.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub instrs: Vec<Instr>,
    pub consts: Vec<Value>,
    pub slots: SlotTable,
    /// Total register-file size (variable slots + expression temporaries).
    pub n_regs: u16,
    pub name: String,
}

impl Program {
    pub fn n_params(&self) -> usize {
        self.slots.n_params()
    }
}

/// Reject duplicate parameter names (the parser already does; this guards
/// programmatically-constructed `UdfDef`s, with the same error in both
/// backends).
pub(crate) fn check_params(udf: &UdfDef) -> Result<()> {
    for (i, p) in udf.params.iter().enumerate() {
        if udf.params[..i].contains(p) {
            return Err(GracefulError::Eval(format!("{}: duplicate parameter {p}", udf.name)));
        }
    }
    Ok(())
}

/// Process-wide verification mode, parsed from `GRACEFUL_VERIFY` once (same
/// pattern as every other `GRACEFUL_*` knob: read once, strict validation,
/// a bad value is a typed [`GracefulError::Config`] on first use).
static VERIFY_MODE: std::sync::OnceLock<std::result::Result<VerifyMode, String>> =
    std::sync::OnceLock::new();

fn verify_mode() -> Result<VerifyMode> {
    VERIFY_MODE.get_or_init(VerifyMode::try_from_env).clone().map_err(GracefulError::Config)
}

/// Compile a UDF definition to bytecode.
///
/// Fails for duplicate parameter names, for degenerate inputs the register
/// encoding cannot express (>32k registers or constants) — every UDF the
/// generator or parser produces compiles — and, under the default
/// `GRACEFUL_VERIFY=strict`, for any program the bytecode verifier
/// ([`crate::analysis::verify()`]) rejects, so a compiler bug surfaces here as
/// a typed error instead of as backend-divergent behaviour downstream.
pub fn compile(udf: &UdfDef) -> Result<Program> {
    compile_with(udf, verify_mode()?)
}

/// [`compile`] with an explicit [`VerifyMode`] (the env-independent entry
/// point: tests and the lint harness pass `VerifyMode::Strict` directly so
/// they never race the process environment).
pub fn compile_with(udf: &UdfDef, mode: VerifyMode) -> Result<Program> {
    check_params(udf)?;
    let slots = SlotTable::build(udf);
    let mut c = Compiler {
        instrs: Vec::new(),
        consts: Vec::new(),
        temp_next: slots.len() as u16,
        max_regs: slots.len() as u16,
        slots: &slots,
        udf_name: &udf.name,
    };
    // Parameters are definitely assigned on entry.
    let mut assigned = vec![false; slots.len()];
    for a in assigned.iter_mut().take(slots.n_params()) {
        *a = true;
    }
    c.block(&udf.body, &mut assigned)?;
    c.emit(Instr::ReturnNull);
    let prog = Program {
        instrs: c.instrs,
        consts: c.consts,
        n_regs: c.max_regs,
        slots,
        name: udf.name.clone(),
    };
    if mode == VerifyMode::Strict {
        crate::analysis::verify(&prog)?;
    }
    Ok(prog)
}

struct Compiler<'a> {
    instrs: Vec<Instr>,
    consts: Vec<Value>,
    temp_next: u16,
    max_regs: u16,
    slots: &'a SlotTable,
    udf_name: &'a str,
}

impl<'a> Compiler<'a> {
    fn emit(&mut self, i: Instr) -> usize {
        self.instrs.push(i);
        self.instrs.len() - 1
    }

    fn here(&self) -> u32 {
        self.instrs.len() as u32
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.instrs[at] {
            Instr::Jump { target: t }
            | Instr::JumpIfFalse { target: t, .. }
            | Instr::JumpIfTrue { target: t, .. }
            | Instr::ForNext { exit: t, .. } => *t = target,
            other => unreachable!("patching non-jump instruction {other:?}"),
        }
    }

    fn alloc_temp(&mut self) -> Result<u16> {
        let r = self.temp_next;
        if r >= CONST_BIT {
            return Err(GracefulError::Eval(format!(
                "UDF {} too complex to compile: register file exceeded",
                self.udf_name
            )));
        }
        self.temp_next += 1;
        self.max_regs = self.max_regs.max(self.temp_next);
        Ok(r)
    }

    fn temp_mark(&self) -> u16 {
        self.temp_next
    }

    fn temp_reset(&mut self, mark: u16) {
        self.temp_next = mark;
    }

    fn const_idx(&mut self, v: Value) -> Result<Operand> {
        let idx = match self.consts.iter().position(|c| *c == v) {
            Some(i) => i,
            None => {
                self.consts.push(v);
                self.consts.len() - 1
            }
        };
        if idx >= CONST_BIT as usize {
            return Err(GracefulError::Eval(format!(
                "UDF {} too complex to compile: constant pool exceeded",
                self.udf_name
            )));
        }
        Ok(Operand::constant(idx as u16))
    }

    fn slot(&self, name: &str) -> u16 {
        self.slots.slot_of(name).expect("SlotTable::build covers every name")
    }

    // -- statements ---------------------------------------------------------

    fn block(&mut self, body: &[Stmt], assigned: &mut [bool]) -> Result<()> {
        for stmt in body {
            self.emit(Instr::Cost(CostKind::Stmt));
            match stmt {
                Stmt::Assign { target, expr } => {
                    let slot = self.slot(target);
                    let mark = self.temp_mark();
                    // Compiling the expression straight into the variable slot
                    // skips a copy, but is only sound when no instruction can
                    // write `slot` before the final one: short-circuit
                    // (`BoolOp`) lowering writes `dst` early, so route those
                    // through a temporary.
                    if contains_boolop(expr) {
                        let t = self.expr_value(expr, assigned)?;
                        self.emit(Instr::Copy { dst: slot, src: t });
                    } else {
                        self.expr_into(expr, slot, assigned)?;
                    }
                    self.temp_reset(mark);
                    self.emit(Instr::Cost(CostKind::Assign));
                    self.emit(Instr::MarkDef { slot });
                    assigned[slot as usize] = true;
                }
                Stmt::If { cond, then_body, else_body } => {
                    let mark = self.temp_mark();
                    let c = self.expr_value(cond, assigned)?;
                    self.emit(Instr::Cost(CostKind::Branch));
                    let jf = self.emit(Instr::JumpIfFalse { cond: c, target: 0 });
                    self.temp_reset(mark);
                    let mut then_assigned = assigned.to_vec();
                    self.block(then_body, &mut then_assigned)?;
                    if else_body.is_empty() {
                        let end = self.here();
                        self.patch(jf, end);
                        // Else side assigns nothing: definite set unchanged.
                    } else {
                        let jend = self.emit(Instr::Jump { target: 0 });
                        let else_at = self.here();
                        self.patch(jf, else_at);
                        let mut else_assigned = assigned.to_vec();
                        self.block(else_body, &mut else_assigned)?;
                        let end = self.here();
                        self.patch(jend, end);
                        for (a, (t, e)) in
                            assigned.iter_mut().zip(then_assigned.iter().zip(else_assigned.iter()))
                        {
                            *a = *a || (*t && *e);
                        }
                    }
                }
                Stmt::For { var, count, body } => {
                    let var_slot = self.slot(var);
                    let mark = self.temp_mark();
                    let src = self.expr_value(count, assigned)?;
                    // Counter/limit temporaries live across the body; they are
                    // allocated above `src`'s temp (not over it) so `ForInit`
                    // never reads a register it just clobbered.
                    let counter = self.alloc_temp()?;
                    let limit = self.alloc_temp()?;
                    self.emit(Instr::ForInit { counter, limit, src });
                    let head = self.here();
                    let next = self.emit(Instr::ForNext { counter, limit, var_slot, exit: 0 });
                    // The loop variable is assigned on every path through the
                    // body; the body may run zero times, so nothing it (or
                    // the binding) assigns is definite afterwards.
                    let mut body_assigned = assigned.to_vec();
                    body_assigned[var_slot as usize] = true;
                    self.block(body, &mut body_assigned)?;
                    self.emit(Instr::Jump { target: head });
                    let exit = self.here();
                    self.patch(next, exit);
                    self.temp_reset(mark);
                }
                Stmt::While { cond, body } => {
                    let outer = self.temp_mark();
                    let counter = self.alloc_temp()?;
                    self.emit(Instr::WhileInit { counter });
                    let head = self.here();
                    let mark = self.temp_mark();
                    let c = self.expr_value(cond, assigned)?;
                    let jf = self.emit(Instr::JumpIfFalse { cond: c, target: 0 });
                    self.temp_reset(mark);
                    self.emit(Instr::WhileIter { counter });
                    let mut body_assigned = assigned.to_vec();
                    self.block(body, &mut body_assigned)?;
                    self.emit(Instr::Jump { target: head });
                    let exit = self.here();
                    self.patch(jf, exit);
                    self.temp_reset(outer);
                }
                Stmt::Return(e) => {
                    let mark = self.temp_mark();
                    let src = self.expr_value(e, assigned)?;
                    self.emit(Instr::Return { src });
                    self.temp_reset(mark);
                }
            }
        }
        Ok(())
    }

    // -- expressions --------------------------------------------------------

    /// Compile `expr` and return an operand holding its value. Names and
    /// literals become direct operands (no copy, no instruction); compound
    /// expressions land in a fresh temporary.
    fn expr_value(&mut self, expr: &Expr, assigned: &[bool]) -> Result<Operand> {
        match expr {
            Expr::Name(n) => {
                let slot = self.slot(n);
                if !assigned[slot as usize] {
                    self.emit(Instr::CheckDef { slot });
                }
                Ok(Operand::reg(slot))
            }
            Expr::Int(i) => self.const_idx(Value::Int(*i)),
            Expr::Float(f) => self.const_idx(Value::Float(*f)),
            Expr::Str(s) => self.const_idx(Value::Text(s.clone())),
            Expr::Bool(b) => self.const_idx(Value::Bool(*b)),
            Expr::NoneLit => self.const_idx(Value::Null),
            _ => {
                let t = self.alloc_temp()?;
                self.expr_into(expr, t, assigned)?;
                Ok(Operand::reg(t))
            }
        }
    }

    /// Compile `expr` so its value ends up in register `dst`.
    fn expr_into(&mut self, expr: &Expr, dst: u16, assigned: &[bool]) -> Result<()> {
        match expr {
            Expr::Name(_)
            | Expr::Int(_)
            | Expr::Float(_)
            | Expr::Str(_)
            | Expr::Bool(_)
            | Expr::NoneLit => {
                let src = self.expr_value(expr, assigned)?;
                self.emit(Instr::Copy { dst, src });
            }
            Expr::Unary { op, operand } => {
                let mark = self.temp_mark();
                let src = self.expr_value(operand, assigned)?;
                self.emit(Instr::Unary { op: *op, dst, src });
                self.temp_reset(mark);
            }
            Expr::Binary { op, left, right } => {
                let mark = self.temp_mark();
                let l = self.expr_value(left, assigned)?;
                let r = self.expr_value(right, assigned)?;
                self.emit(Instr::Binary { op: *op, dst, l, r });
                self.temp_reset(mark);
            }
            Expr::Compare { op, left, right } => {
                let mark = self.temp_mark();
                let l = self.expr_value(left, assigned)?;
                let r = self.expr_value(right, assigned)?;
                self.emit(Instr::Compare { op: *op, dst, l, r });
                self.temp_reset(mark);
            }
            Expr::BoolOp { is_and, left, right } => {
                // Tree-walker order: evaluate left, charge one compare, then
                // short-circuit. `dst` is always a temporary here (never a
                // variable slot — see the Assign lowering), so writing it
                // before deciding the branch is safe.
                let mark = self.temp_mark();
                let l = self.expr_value(left, assigned)?;
                self.emit(Instr::Cost(CostKind::Compare));
                self.emit(Instr::CastBool { dst, src: l });
                self.temp_reset(mark);
                let jump = if *is_and {
                    self.emit(Instr::JumpIfFalse { cond: Operand::reg(dst), target: 0 })
                } else {
                    self.emit(Instr::JumpIfTrue { cond: Operand::reg(dst), target: 0 })
                };
                let mark = self.temp_mark();
                let r = self.expr_value(right, assigned)?;
                self.emit(Instr::CastBool { dst, src: r });
                self.temp_reset(mark);
                let end = self.here();
                self.patch(jump, end);
            }
            Expr::Call { func, args } => {
                self.call(*func, None, args, dst, assigned)?;
            }
            Expr::Method { func, recv, args } => {
                self.call(*func, Some(recv), args, dst, assigned)?;
            }
        }
        Ok(())
    }

    /// Lower a library call: receiver (if any) and arguments are evaluated
    /// left-to-right into consecutive registers, mirroring the tree-walker's
    /// evaluation (and therefore cost) order.
    fn call(
        &mut self,
        func: LibFn,
        recv: Option<&Expr>,
        args: &[Expr],
        dst: u16,
        assigned: &[bool],
    ) -> Result<()> {
        let mark = self.temp_mark();
        let has_recv = recv.is_some();
        let n_total = args.len() + has_recv as usize;
        let base = self.temp_next;
        for _ in 0..n_total {
            self.alloc_temp()?;
        }
        let mut at = base;
        if let Some(r) = recv {
            self.expr_into(r, at, assigned)?;
            at += 1;
        }
        for a in args {
            self.expr_into(a, at, assigned)?;
            at += 1;
        }
        if args.len() > u8::MAX as usize {
            return Err(GracefulError::Eval(format!(
                "UDF {}: call with more than 255 arguments",
                self.udf_name
            )));
        }
        self.emit(Instr::Call { func, dst, base, n_args: args.len() as u8, has_recv });
        self.temp_reset(mark);
        Ok(())
    }
}

fn contains_boolop(e: &Expr) -> bool {
    match e {
        Expr::BoolOp { .. } => true,
        Expr::Unary { operand, .. } => contains_boolop(operand),
        Expr::Binary { left, right, .. } | Expr::Compare { left, right, .. } => {
            contains_boolop(left) || contains_boolop(right)
        }
        Expr::Call { args, .. } => args.iter().any(contains_boolop),
        Expr::Method { recv, args, .. } => {
            contains_boolop(recv) || args.iter().any(contains_boolop)
        }
        _ => false,
    }
}

/// The iteration cap enforced by [`Instr::WhileIter`] (re-exported for
/// callers that match on [`GracefulError::IterationLimit`]).
pub const WHILE_ITERATION_LIMIT: u64 = MAX_WHILE_ITERS;

// -- shape analysis for the columnar (SIMD) executor --------------------------

/// How the columnar executor in [`crate::simd`] treats one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstrClass {
    /// Executes column-at-a-time over the whole selection (numeric
    /// arithmetic, comparisons, copies, cost markers, unconditional jumps).
    /// Operand *types* are still checked at run time — a `Vector`-class
    /// binary op over a string register bails the selection.
    Vector,
    /// Conditional jump: splits the selection vector by the condition
    /// column's truthiness (branch divergence).
    Split,
    /// Terminates a selection's rows with a value.
    Return,
    /// A `ForInit`/`ForNext` of a loop with a statically proven constant
    /// trip count (see [`crate::analysis::tripcount`]): every row iterates
    /// the same number of times, so the columnar executor unrolls the loop
    /// across the whole selection, replaying the per-iteration cost charges.
    /// The executor still re-checks the limit lanes at run time and bails
    /// the selection on any surprise.
    Counted,
    /// Not vectorizable (data-dependent loops, string/length builtins): rows
    /// that reach it leave the fast path and fall back to the per-row
    /// [`crate::vm::Vm`].
    Bail,
}

/// Result of [`Program::simd_shape`]: per-instruction classes plus the
/// verdict on whether attempting columnar execution can pay off at all.
#[derive(Debug, Clone, PartialEq)]
pub struct SimdShape {
    /// `class[pc]` for every instruction of the program.
    pub class: Vec<InstrClass>,
    /// True when at least one entry→`Return` path exists that touches only
    /// `Vector`/`Split`/`Counted` instructions — i.e. some rows *can*
    /// complete on the fast path. When false the columnar executor is pure
    /// overhead (every selection would bail) and callers should go straight
    /// to the batch VM.
    pub has_fast_path: bool,
    /// `trip_count[pc]` — the proven constant trip count when `pc` is a
    /// `Counted` `ForInit`/`ForNext`, `None` everywhere else. Metadata for
    /// observability/lint tooling: the executor itself re-derives nothing
    /// from it (it re-checks the limit lanes at run time), so a stale shape
    /// can cost performance but never correctness.
    pub trip_count: Vec<Option<u32>>,
}

impl Program {
    /// Classify every instruction for the columnar executor and decide
    /// whether the program has any all-vectorizable path from entry to a
    /// `Return`.
    ///
    /// This is a *shape* analysis: it looks only at opcodes and control
    /// flow, never at value types (those are concrete per selection at run
    /// time — an `Int` column stays `Int` for every row of a batch). String
    /// *methods* and the string-only builtins are `Bail` by shape; numeric
    /// ops that merely *could* see a string-typed register stay `Vector` and
    /// are rejected per-selection by the executor's type checks.
    pub fn simd_shape(&self) -> SimdShape {
        use LibFn::*;
        let trip_count = crate::analysis::trip_counts(self);
        let class: Vec<InstrClass> = self
            .instrs
            .iter()
            .enumerate()
            .map(|(pc, i)| match i {
                Instr::Copy { .. }
                | Instr::Unary { .. }
                | Instr::Binary { .. }
                | Instr::Compare { .. }
                | Instr::CastBool { .. }
                | Instr::MarkDef { .. }
                | Instr::Cost(_)
                | Instr::Jump { .. } => InstrClass::Vector,
                // Definedness is path-determined, and the columnar executor
                // follows concrete paths: it tracks `MarkDef` per selection
                // and bails only the selections whose rows would actually
                // error (the scalar VM then reports the exact per-row error).
                Instr::CheckDef { .. } => InstrClass::Vector,
                Instr::Call { func, .. } => match func {
                    // String receivers/outputs and the allocation-bound
                    // builtins stay on the scalar path.
                    BuiltinLen | BuiltinStr | StrUpper | StrLower | StrStrip | StrReplace
                    | StrStartswith | StrEndswith | StrFind | StrSplitCount => InstrClass::Bail,
                    _ => InstrClass::Vector,
                },
                Instr::JumpIfFalse { .. } | Instr::JumpIfTrue { .. } => InstrClass::Split,
                Instr::Return { .. } | Instr::ReturnNull => InstrClass::Return,
                // A `for` loop whose trip count is provably one constant has
                // no per-row iteration state: every row runs the body the
                // same number of times, so the executor can unroll it across
                // the selection. Data-dependent loops keep per-row state the
                // columnar model does not carry.
                Instr::ForInit { .. } | Instr::ForNext { .. } if trip_count[pc].is_some() => {
                    InstrClass::Counted
                }
                Instr::ForInit { .. }
                | Instr::ForNext { .. }
                | Instr::WhileInit { .. }
                | Instr::WhileIter { .. } => InstrClass::Bail,
            })
            .collect();
        // DFS over the CFG restricted to Vector/Split/Counted/Return
        // instructions.
        let mut visited = vec![false; class.len()];
        let mut stack = vec![0usize];
        let mut has_fast_path = false;
        while let Some(pc) = stack.pop() {
            if pc >= class.len() || visited[pc] {
                continue;
            }
            visited[pc] = true;
            match class[pc] {
                InstrClass::Bail => {}
                InstrClass::Return => {
                    has_fast_path = true;
                    break;
                }
                InstrClass::Vector | InstrClass::Split | InstrClass::Counted => {
                    match &self.instrs[pc] {
                        Instr::Jump { target } => stack.push(*target as usize),
                        Instr::JumpIfFalse { target, .. } | Instr::JumpIfTrue { target, .. } => {
                            stack.push(*target as usize);
                            stack.push(pc + 1);
                        }
                        // A counted ForNext both enters the body and exits.
                        Instr::ForNext { exit, .. } => {
                            stack.push(*exit as usize);
                            stack.push(pc + 1);
                        }
                        _ => stack.push(pc + 1),
                    }
                }
            }
        }
        SimdShape { class, has_fast_path, trip_count }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, CmpOp};

    fn udf(params: &[&str], body: Vec<Stmt>) -> UdfDef {
        UdfDef { name: "f".into(), params: params.iter().map(|s| s.to_string()).collect(), body }
    }

    #[test]
    fn slot_table_orders_params_first() {
        let u = udf(
            &["x", "y"],
            vec![
                Stmt::Assign { target: "z".into(), expr: Expr::name("x") },
                Stmt::For {
                    var: "i".into(),
                    count: Expr::Int(3),
                    body: vec![Stmt::Assign {
                        target: "z".into(),
                        expr: Expr::bin(BinOp::Add, Expr::name("z"), Expr::name("i")),
                    }],
                },
            ],
        );
        let t = SlotTable::build(&u);
        assert_eq!(t.n_params(), 2);
        assert_eq!(t.slot_of("x"), Some(0));
        assert_eq!(t.slot_of("y"), Some(1));
        assert_eq!(t.slot_of("z"), Some(2));
        assert_eq!(t.slot_of("i"), Some(3));
        assert_eq!(t.slot_of("nope"), None);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn read_only_names_get_slots() {
        let u = udf(&["x"], vec![Stmt::Return(Expr::name("ghost"))]);
        let t = SlotTable::build(&u);
        assert!(t.slot_of("ghost").is_some());
    }

    #[test]
    fn compile_emits_cost_markers_per_statement() {
        let u = udf(
            &["x"],
            vec![
                Stmt::Assign { target: "z".into(), expr: Expr::Int(1) },
                Stmt::Return(Expr::name("z")),
            ],
        );
        let p = compile(&u).unwrap();
        let stmt_costs =
            p.instrs.iter().filter(|i| matches!(i, Instr::Cost(CostKind::Stmt))).count();
        assert_eq!(stmt_costs, 2);
        assert!(p.instrs.iter().any(|i| matches!(i, Instr::Cost(CostKind::Assign))));
        assert!(matches!(p.instrs.last(), Some(Instr::ReturnNull)));
    }

    #[test]
    fn constants_are_deduplicated() {
        let u = udf(&["x"], vec![Stmt::Return(Expr::bin(BinOp::Add, Expr::Int(7), Expr::Int(7)))]);
        let p = compile(&u).unwrap();
        assert_eq!(p.consts.iter().filter(|c| **c == Value::Int(7)).count(), 1);
    }

    #[test]
    fn temporaries_are_reused_across_statements() {
        let assign = |t: &str| Stmt::Assign {
            target: t.into(),
            expr: Expr::bin(
                BinOp::Add,
                Expr::bin(BinOp::Mul, Expr::name("x"), Expr::Int(2)),
                Expr::Int(1),
            ),
        };
        let one = compile(&udf(&["x"], vec![assign("a")])).unwrap();
        let many = compile(&udf(&["x"], vec![assign("a"), assign("b"), assign("c")])).unwrap();
        // More statements must not grow the register file (beyond the extra
        // variable slots themselves).
        assert_eq!(many.n_regs as usize - many.slots.len(), one.n_regs as usize - one.slots.len());
    }

    #[test]
    fn definite_assignment_elides_checks_for_params() {
        let u = udf(
            &["x"],
            vec![Stmt::Return(Expr::bin(BinOp::Add, Expr::name("x"), Expr::name("x")))],
        );
        let p = compile(&u).unwrap();
        assert!(!p.instrs.iter().any(|i| matches!(i, Instr::CheckDef { .. })));
    }

    #[test]
    fn branch_only_assignment_keeps_the_check() {
        // z is assigned only in the then-branch, so the later read of z must
        // be guarded.
        let u = udf(
            &["x"],
            vec![
                Stmt::If {
                    cond: Expr::cmp(CmpOp::Lt, Expr::name("x"), Expr::Int(0)),
                    then_body: vec![Stmt::Assign { target: "z".into(), expr: Expr::Int(1) }],
                    else_body: vec![],
                },
                Stmt::Return(Expr::name("z")),
            ],
        );
        let p = compile(&u).unwrap();
        assert!(p.instrs.iter().any(|i| matches!(i, Instr::CheckDef { .. })));
    }

    #[test]
    fn both_branch_assignment_elides_the_check() {
        let u = udf(
            &["x"],
            vec![
                Stmt::If {
                    cond: Expr::cmp(CmpOp::Lt, Expr::name("x"), Expr::Int(0)),
                    then_body: vec![Stmt::Assign { target: "z".into(), expr: Expr::Int(1) }],
                    else_body: vec![Stmt::Assign { target: "z".into(), expr: Expr::Int(2) }],
                },
                Stmt::Return(Expr::name("z")),
            ],
        );
        let p = compile(&u).unwrap();
        assert!(!p.instrs.iter().any(|i| matches!(i, Instr::CheckDef { .. })));
    }

    #[test]
    fn simd_shape_classifies_straightline_numeric_as_fast() {
        let u = udf(
            &["x", "y"],
            vec![Stmt::Return(Expr::bin(BinOp::Add, Expr::name("x"), Expr::name("y")))],
        );
        let shape = compile(&u).unwrap().simd_shape();
        assert!(shape.has_fast_path);
        assert!(shape.class.iter().all(|c| *c != InstrClass::Bail));
    }

    #[test]
    fn simd_shape_marks_loops_as_bail_but_keeps_branchy_fast_paths() {
        // One branch returns straight-line, the other runs a *data-dependent*
        // loop: the program still has a fast path (the loop-free branch).
        let u = udf(
            &["x"],
            vec![
                Stmt::If {
                    cond: Expr::cmp(CmpOp::Lt, Expr::name("x"), Expr::Int(0)),
                    then_body: vec![Stmt::Return(Expr::name("x"))],
                    else_body: vec![Stmt::For {
                        var: "i".into(),
                        count: Expr::name("x"),
                        body: vec![Stmt::Assign { target: "z".into(), expr: Expr::name("i") }],
                    }],
                },
                Stmt::Return(Expr::Int(0)),
            ],
        );
        let p = compile(&u).unwrap();
        let shape = p.simd_shape();
        assert!(shape.has_fast_path);
        assert!(shape.class.contains(&InstrClass::Bail), "loop instructions classified Bail");
        assert!(shape.class.contains(&InstrClass::Split), "branch classified Split");
        assert!(shape.trip_count.iter().all(Option::is_none), "no provable trip count");
    }

    #[test]
    fn simd_shape_counts_constant_trip_loops() {
        // A literal `range(3)` loop is Counted, not Bail, and the shape
        // records its proven trip count on both loop instructions.
        let u = udf(
            &["x"],
            vec![
                Stmt::For {
                    var: "i".into(),
                    count: Expr::Int(3),
                    body: vec![Stmt::Assign { target: "z".into(), expr: Expr::name("i") }],
                },
                Stmt::Return(Expr::Int(0)),
            ],
        );
        let p = compile(&u).unwrap();
        let shape = p.simd_shape();
        assert!(shape.has_fast_path, "counted loops keep the fast path alive");
        assert!(!shape.class.contains(&InstrClass::Bail));
        assert_eq!(
            shape.class.iter().filter(|c| **c == InstrClass::Counted).count(),
            2,
            "ForInit and ForNext both Counted"
        );
        assert_eq!(shape.trip_count.iter().flatten().count(), 2);
        assert_eq!(shape.trip_count.iter().flatten().copied().max(), Some(3));
    }

    #[test]
    fn simd_shape_rejects_programs_with_no_vectorizable_path() {
        // Every path runs through a while loop: nothing to vectorize.
        let u = udf(
            &["x"],
            vec![
                Stmt::While {
                    cond: Expr::cmp(CmpOp::Lt, Expr::name("x"), Expr::Int(0)),
                    body: vec![Stmt::Assign { target: "x".into(), expr: Expr::Int(0) }],
                },
                Stmt::Return(Expr::name("x")),
            ],
        );
        assert!(!compile(&u).unwrap().simd_shape().has_fast_path);
        // String methods bail too.
        let s = udf(
            &["s"],
            vec![Stmt::Return(Expr::Method {
                func: crate::libfns::LibFn::StrUpper,
                recv: Box::new(Expr::name("s")),
                args: vec![],
            })],
        );
        assert!(!compile(&s).unwrap().simd_shape().has_fast_path);
    }

    #[test]
    fn operand_encoding_round_trips() {
        let r = Operand::reg(5);
        assert!(!r.is_const());
        assert_eq!(r.index(), 5);
        let c = Operand::constant(9);
        assert!(c.is_const());
        assert_eq!(c.index(), 9);
    }
}
