//! Synthetic UDF generation (Section V of the paper).
//!
//! The paper generates UDFs in three steps — input selection, high-level
//! structure definition, source-code generation — calibrated against the
//! real-world UDF study of Gupta & Ramachandra: 0–3 branches, 0–3 loops,
//! 10–150 arithmetic/string operations, `math`/`numpy` calls (Table II).
//!
//! Semantic correctness is achieved the same way the paper does it: instead
//! of constraining UDFs to the data, the generator emits **data-adaptation
//! actions** ([`AdaptAction`]) that align the data with the generated code
//! (replace NULLs in input columns); syntactic hazards (division by zero,
//! `sqrt` of negatives) are guarded in the generated code itself and,
//! defensively, in the interpreter.
//!
//! Every generated UDF is guaranteed to terminate: `for` loops have bounded
//! `range()` expressions and generated `while` loops follow a counting-down
//! pattern.

use crate::ast::{BinOp, CmpOp, Expr, Stmt, UdfDef};
use crate::libfns::LibFn;
use crate::printer::print_udf;
use graceful_common::rng::Rng;
use graceful_common::{GracefulError, Result};
use graceful_storage::{DataType, Database, Value};

/// Data-adaptation action emitted alongside a generated UDF.
#[derive(Debug, Clone, PartialEq)]
pub enum AdaptAction {
    /// Replace NULLs of `table.column` with `default` so UDF inputs are total.
    ReplaceNulls { table: String, column: String, default: Value },
}

/// Configuration of the UDF generator, mirroring Table II's ranges.
#[derive(Debug, Clone)]
pub struct UdfGenConfig {
    /// Probability weights for 0/1/2/3 branches.
    pub branch_weights: [f64; 4],
    /// Probability weights for 0/1/2/3 loops.
    pub loop_weights: [f64; 4],
    /// Minimum total operation count.
    pub min_ops: usize,
    /// Maximum total operation count.
    pub max_ops: usize,
    /// Upper bound for literal `range()` trip counts.
    pub max_loop_iters: usize,
    /// Probability of drawing a string input column (when one exists).
    pub string_prob: f64,
    /// Probability that a computation statement calls a library function.
    pub lib_call_prob: f64,
    /// Maximum number of UDF parameters.
    pub max_params: usize,
}

impl Default for UdfGenConfig {
    fn default() -> Self {
        UdfGenConfig {
            branch_weights: [0.35, 0.35, 0.2, 0.1],
            loop_weights: [0.45, 0.35, 0.13, 0.07],
            min_ops: 10,
            max_ops: 150,
            max_loop_iters: 48,
            string_prob: 0.25,
            lib_call_prob: 0.4,
            max_params: 3,
        }
    }
}

/// A generated UDF plus everything the benchmark needs to use it.
#[derive(Debug, Clone)]
pub struct GeneratedUdf {
    pub def: UdfDef,
    /// Source text (round-trips through the parser).
    pub source: String,
    /// Table the UDF reads from.
    pub table: String,
    /// Input columns, positionally matching `def.params`.
    pub input_columns: Vec<String>,
    /// Data-adaptation actions the caller must apply before execution.
    pub adaptations: Vec<AdaptAction>,
}

/// The synthetic UDF generator.
#[derive(Debug, Clone, Default)]
pub struct UdfGenerator {
    pub config: UdfGenConfig,
}

/// Internal generation context.
struct Ctx<'a> {
    cfg: &'a UdfGenConfig,
    /// (param name, data type, column stats min/max) for numeric params.
    numeric_params: Vec<(String, f64, f64)>,
    string_params: Vec<String>,
    /// Numeric local variables available for reading.
    locals: Vec<String>,
    next_var: usize,
    ops_budget: i64,
    branches_left: usize,
    loops_left: usize,
    /// Loop variable names currently in scope (usable in expressions).
    loop_vars: Vec<String>,
    loop_depth: usize,
    /// Depth of conditionally executed scopes (branch arms, loop bodies).
    /// Fresh temporaries may only be introduced at depth 0 — otherwise a
    /// later read could hit an unassigned variable (Python `NameError`).
    cond_depth: usize,
}

impl UdfGenerator {
    pub fn new(config: UdfGenConfig) -> Self {
        UdfGenerator { config }
    }

    /// Generate a UDF over a random table of `db`.
    pub fn generate(&self, db: &Database, rng: &mut Rng) -> Result<GeneratedUdf> {
        // Prefer tables with at least two numeric non-key columns.
        let candidates: Vec<&str> = db
            .tables()
            .iter()
            .filter(|t| !numeric_value_columns(db, &t.name).is_empty())
            .map(|t| t.name.as_str())
            .collect();
        if candidates.is_empty() {
            return Err(GracefulError::Benchmark(format!(
                "database {} has no table with numeric columns",
                db.name
            )));
        }
        let table = candidates[rng.range(0..candidates.len())].to_string();
        self.generate_for_table(db, &table, rng)
    }

    /// Generate a UDF reading from a specific table.
    pub fn generate_for_table(
        &self,
        db: &Database,
        table: &str,
        rng: &mut Rng,
    ) -> Result<GeneratedUdf> {
        let cfg = &self.config;
        let numeric_cols = numeric_value_columns(db, table);
        if numeric_cols.is_empty() {
            return Err(GracefulError::Benchmark(format!("table {table} has no numeric columns")));
        }
        let text_cols = text_value_columns(db, table);
        // --- Step 1: input selection ---
        let n_numeric = rng.range(1..=numeric_cols.len().min(cfg.max_params));
        let mut chosen: Vec<String> = rng
            .sample_indices(numeric_cols.len(), n_numeric)
            .into_iter()
            .map(|i| numeric_cols[i].clone())
            .collect();
        let use_string =
            !text_cols.is_empty() && chosen.len() < cfg.max_params && rng.chance(cfg.string_prob);
        if use_string {
            chosen.push(text_cols[rng.range(0..text_cols.len())].clone());
        }
        let stats = db.stats(table)?;
        let mut numeric_params = Vec::new();
        let mut string_params = Vec::new();
        let mut params = Vec::new();
        for (i, col) in chosen.iter().enumerate() {
            let pname = format!("x{i}");
            let cs = stats.column(col)?;
            if cs.data_type.is_numeric() {
                numeric_params.push((pname.clone(), cs.min, cs.max));
            } else {
                string_params.push(pname.clone());
            }
            params.push(pname);
        }
        // --- Step 2: structure definition ---
        let n_branches = rng.choose_weighted(&cfg.branch_weights);
        let n_loops = rng.choose_weighted(&cfg.loop_weights);
        let target_ops = rng.range(cfg.min_ops..=cfg.max_ops) as i64;
        let mut ctx = Ctx {
            cfg,
            numeric_params,
            string_params,
            locals: Vec::new(),
            next_var: 0,
            ops_budget: target_ops,
            branches_left: n_branches,
            loops_left: n_loops,
            loop_vars: Vec::new(),
            loop_depth: 0,
            cond_depth: 0,
        };
        // --- Step 3: source generation ---
        let mut body = Vec::new();
        // Seed accumulator `z` from a numeric param (or literal).
        let init = if let Some((p, _, _)) = ctx.numeric_params.first() {
            Expr::bin(BinOp::Mul, Expr::name(p), Expr::Float(round2(rng.range(0.5..2.0))))
        } else {
            Expr::Int(rng.range(1..10))
        };
        body.push(Stmt::Assign { target: "z".into(), expr: init });
        ctx.locals.push("z".into());
        ctx.ops_budget -= 1;
        // String preprocessing: derive a numeric from the string input.
        if let Some(s) = ctx.string_params.first().cloned() {
            let derived = gen_string_stmt(&s, rng);
            body.push(Stmt::Assign { target: "slen".into(), expr: derived });
            ctx.locals.push("slen".into());
            ctx.ops_budget -= 2;
        }
        gen_segments(&mut ctx, &mut body, rng, true);
        // Final mixing step: fold an input back into the accumulator so the
        // UDF's output distribution depends on the data (required for
        // selectivity-controlled UDF filters; a constant output would make
        // every filter trivially all-or-nothing).
        if let Some((p, _, _)) = ctx.numeric_params.first() {
            body.push(Stmt::Assign {
                target: "z".into(),
                expr: Expr::bin(
                    BinOp::Add,
                    Expr::name("z"),
                    Expr::bin(BinOp::Mul, Expr::name(p), Expr::Float(round2(rng.range(0.1..3.0)))),
                ),
            });
        }
        // Return value: numeric accumulator, or a string for projection UDFs.
        let ret = if !ctx.string_params.is_empty() && rng.chance(0.2) {
            let s = ctx.string_params[0].clone();
            Expr::Method {
                func: if rng.chance(0.5) { LibFn::StrUpper } else { LibFn::StrLower },
                recv: Box::new(Expr::name(&s)),
                args: vec![],
            }
        } else {
            Expr::name("z")
        };
        body.push(Stmt::Return(ret));
        let def = UdfDef { name: format!("udf_{}", rng.range(0..1_000_000u32)), params, body };
        // --- Data adaptation ---
        let mut adaptations = Vec::new();
        for col in &chosen {
            let cs = stats.column(col)?;
            if cs.null_fraction > 0.0 {
                let default = match cs.data_type {
                    DataType::Int => Value::Int(((cs.min + cs.max) / 2.0) as i64),
                    DataType::Float => Value::Float((cs.min + cs.max) / 2.0),
                    DataType::Text => Value::Text("missing".into()),
                    DataType::Bool => Value::Bool(false),
                };
                adaptations.push(AdaptAction::ReplaceNulls {
                    table: table.to_string(),
                    column: col.clone(),
                    default,
                });
            }
        }
        let source = print_udf(&def);
        Ok(GeneratedUdf {
            def,
            source,
            table: table.to_string(),
            input_columns: chosen,
            adaptations,
        })
    }
}

/// Emit a mix of computation statements, branches and loops until the
/// structural quota and operation budget are spent.
fn gen_segments(ctx: &mut Ctx<'_>, body: &mut Vec<Stmt>, rng: &mut Rng, top_level: bool) {
    let mut guard = 0;
    while (ctx.ops_budget > 0 || (top_level && (ctx.branches_left > 0 || ctx.loops_left > 0)))
        && guard < 400
    {
        guard += 1;
        let can_branch = top_level && ctx.branches_left > 0;
        let can_loop = top_level && ctx.loops_left > 0 && ctx.loop_depth < 2;
        let roll = rng.unit();
        if can_branch && roll < 0.30 {
            ctx.branches_left -= 1;
            body.push(gen_branch(ctx, rng));
        } else if can_loop && roll < 0.55 {
            ctx.loops_left -= 1;
            body.push(gen_loop(ctx, rng));
        } else {
            body.push(gen_comp_stmt(ctx, rng));
        }
        // Stop early once both quotas are filled and the budget is gone.
        if ctx.ops_budget <= 0 && ctx.branches_left == 0 && ctx.loops_left == 0 {
            break;
        }
    }
}

/// A branch whose condition is (usually) directly on an input parameter so
/// the hit-ratio estimator can rewrite it to SQL.
fn gen_branch(ctx: &mut Ctx<'_>, rng: &mut Rng) -> Stmt {
    let cond = if !ctx.numeric_params.is_empty() && rng.chance(0.8) {
        let (p, lo, hi) = ctx.numeric_params[rng.range(0..ctx.numeric_params.len())].clone();
        let q = rng.range(0.05..0.95);
        let lit = lo + q * (hi - lo);
        let op = *rng.choose(&[CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge]);
        Expr::cmp(op, Expr::name(&p), Expr::Float(round2(lit)))
    } else {
        // Condition on the derived accumulator (untraceable for the
        // hit-ratio estimator, which falls back to 0.5).
        let op = *rng.choose(&[CmpOp::Lt, CmpOp::Gt]);
        Expr::cmp(op, Expr::name("z"), Expr::Float(round2(rng.range(-100.0..100.0))))
    };
    ctx.ops_budget -= 1;
    ctx.cond_depth += 1;
    let mut then_body = vec![gen_comp_stmt(ctx, rng)];
    // Nest a loop inside one branch arm with high probability — the paper's
    // Figure 2 pattern, and the reason branch hit-ratios dominate UDF cost:
    // rows taking the loop arm cost one to two orders of magnitude more.
    if ctx.loops_left > 0 && rng.chance(0.6) {
        ctx.loops_left -= 1;
        then_body.push(gen_loop(ctx, rng));
    } else if rng.chance(0.5) {
        then_body.push(gen_comp_stmt(ctx, rng));
    }
    let else_body = if rng.chance(0.7) { vec![gen_comp_stmt(ctx, rng)] } else { Vec::new() };
    ctx.cond_depth -= 1;
    Stmt::If { cond, then_body, else_body }
}

/// A `for`/`while` loop with a bounded trip count.
fn gen_loop(ctx: &mut Ctx<'_>, rng: &mut Rng) -> Stmt {
    ctx.loop_depth += 1;
    let var = format!("i{}", ctx.next_var);
    ctx.next_var += 1;
    let kind = rng.unit();
    let stmt = if kind < 0.4 {
        // Literal trip count (featurized exactly on the LOOP node).
        let n = 2 + rng.zipf(ctx.cfg.max_loop_iters.max(2) - 1, 0.45) as i64;
        ctx.loop_vars.push(var.clone());
        let body = gen_loop_body(ctx, rng);
        ctx.loop_vars.pop();
        Stmt::For { var, count: Expr::Int(n), body }
    } else if kind < 0.8 && !ctx.numeric_params.is_empty() {
        // Data-dependent trip count: range(int(x) % M + 1).
        let (p, _, _) = ctx.numeric_params[rng.range(0..ctx.numeric_params.len())].clone();
        let m = rng.range(3..(ctx.cfg.max_loop_iters as i64).max(4));
        let count = Expr::bin(
            BinOp::Add,
            Expr::bin(
                BinOp::Mod,
                Expr::call(LibFn::BuiltinInt, vec![Expr::name(&p)]),
                Expr::Int(m),
            ),
            Expr::Int(1),
        );
        ctx.loop_vars.push(var.clone());
        let body = gen_loop_body(ctx, rng);
        ctx.loop_vars.pop();
        Stmt::For { var, count, body }
    } else {
        // Counting-down while loop (loop_type = while, always terminates).
        let n = 2 + rng.zipf(ctx.cfg.max_loop_iters.max(2) - 1, 0.45) as i64;
        let counter = var.clone();
        let mut body = gen_loop_body(ctx, rng);
        body.push(Stmt::Assign {
            target: counter.clone(),
            expr: Expr::bin(BinOp::Sub, Expr::name(&counter), Expr::Int(1)),
        });
        ctx.loop_depth -= 1;
        return Stmt::If {
            // Wrap init+while in a no-op `if True:` so a single Stmt is
            // returned; printed code stays valid Python.
            cond: Expr::Bool(true),
            then_body: vec![
                Stmt::Assign { target: counter.clone(), expr: Expr::Int(n) },
                Stmt::While {
                    cond: Expr::cmp(CmpOp::Gt, Expr::name(&counter), Expr::Int(0)),
                    body,
                },
            ],
            else_body: Vec::new(),
        };
    };
    ctx.loop_depth -= 1;
    stmt
}

fn gen_loop_body(ctx: &mut Ctx<'_>, rng: &mut Rng) -> Vec<Stmt> {
    ctx.cond_depth += 1;
    let n_stmts = rng.range(1..=3usize);
    let mut body = Vec::with_capacity(n_stmts);
    for _ in 0..n_stmts {
        body.push(gen_comp_stmt(ctx, rng));
    }
    // Nested loop with small probability.
    if ctx.loops_left > 0 && ctx.loop_depth < 2 && rng.chance(0.2) {
        ctx.loops_left -= 1;
        body.push(gen_loop(ctx, rng));
    }
    ctx.cond_depth -= 1;
    body
}

/// One computation statement: `z = <expr>` or a fresh temporary.
fn gen_comp_stmt(ctx: &mut Ctx<'_>, rng: &mut Rng) -> Stmt {
    let expr = gen_numeric_expr(ctx, rng, 2);
    let ops = expr.op_count() as i64 + 1;
    ctx.ops_budget -= ops;
    let target = if ctx.cond_depth == 0 && rng.chance(0.25) {
        let t = format!("t{}", ctx.next_var);
        ctx.next_var += 1;
        ctx.locals.push(t.clone());
        t
    } else {
        "z".to_string()
    };
    Stmt::Assign { target, expr }
}

/// Random numeric expression tree of bounded depth over the visible names.
fn gen_numeric_expr(ctx: &mut Ctx<'_>, rng: &mut Rng, depth: usize) -> Expr {
    if depth == 0 || rng.chance(0.3) {
        return gen_leaf(ctx, rng);
    }
    if rng.chance(ctx.cfg.lib_call_prob) {
        let f = *rng.choose(&[
            LibFn::MathSqrt,
            LibFn::MathPow,
            LibFn::MathLog,
            LibFn::MathExp,
            LibFn::MathSin,
            LibFn::MathFabs,
            LibFn::NpAbs,
            LibFn::NpSqrt,
            LibFn::NpLog,
            LibFn::NpMinimum,
            LibFn::NpMaximum,
            LibFn::BuiltinAbs,
            LibFn::BuiltinMin,
            LibFn::BuiltinMax,
        ]);
        let args = match f.arity() {
            1 => vec![gen_numeric_expr(ctx, rng, depth - 1)],
            2 => {
                if f == LibFn::MathPow {
                    // Keep exponents small so values stay bounded.
                    vec![gen_numeric_expr(ctx, rng, depth - 1), Expr::Int(rng.range(2..4))]
                } else {
                    vec![gen_numeric_expr(ctx, rng, depth - 1), gen_leaf(ctx, rng)]
                }
            }
            _ => vec![gen_leaf(ctx, rng), Expr::Int(0), Expr::Int(100)],
        };
        return Expr::Call { func: f, args };
    }
    let op = *rng.choose(&[
        BinOp::Add,
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Mod,
        BinOp::Pow,
        BinOp::FloorDiv,
    ]);
    let left = gen_numeric_expr(ctx, rng, depth - 1);
    let right = match op {
        // Guard division/modulo: denominator is |leaf| + 1.
        BinOp::Div | BinOp::Mod | BinOp::FloorDiv => Expr::bin(
            BinOp::Add,
            Expr::call(LibFn::BuiltinAbs, vec![gen_leaf(ctx, rng)]),
            Expr::Int(1),
        ),
        // Guard exponentiation: small literal exponents only.
        BinOp::Pow => Expr::Int(rng.range(2..4)),
        _ => gen_numeric_expr(ctx, rng, depth - 1),
    };
    Expr::bin(op, left, right)
}

fn gen_leaf(ctx: &mut Ctx<'_>, rng: &mut Rng) -> Expr {
    let mut choices: Vec<Expr> = Vec::new();
    for (p, _, _) in &ctx.numeric_params {
        choices.push(Expr::name(p));
    }
    for l in &ctx.locals {
        choices.push(Expr::name(l));
    }
    for v in &ctx.loop_vars {
        choices.push(Expr::name(v));
    }
    choices.push(Expr::Float(round2(rng.range(0.1..9.9))));
    choices.push(Expr::Int(rng.range(1..20)));
    choices[rng.range(0..choices.len())].clone()
}

/// Derive a numeric value from a string parameter (counts, finds, lengths).
fn gen_string_stmt(param: &str, rng: &mut Rng) -> Expr {
    let roll = rng.unit();
    if roll < 0.4 {
        Expr::call(LibFn::BuiltinLen, vec![Expr::name(param)])
    } else if roll < 0.7 {
        Expr::call(
            LibFn::BuiltinLen,
            vec![Expr::Method {
                func: LibFn::StrStrip,
                recv: Box::new(Expr::Method {
                    func: LibFn::StrUpper,
                    recv: Box::new(Expr::name(param)),
                    args: vec![],
                }),
                args: vec![],
            }],
        )
    } else {
        Expr::Method {
            func: LibFn::StrFind,
            recv: Box::new(Expr::name(param)),
            args: vec![Expr::Str("a".into())],
        }
    }
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

fn numeric_value_columns(db: &Database, table: &str) -> Vec<String> {
    let t = match db.table(table) {
        Ok(t) => t,
        Err(_) => return Vec::new(),
    };
    t.columns()
        .iter()
        .enumerate()
        .filter(|(i, c)| {
            c.data_type().is_numeric()
                && Some(*i) != t.primary_key
                && !t.foreign_keys.iter().any(|fk| fk.column == c.name)
        })
        .map(|(_, c)| c.name.clone())
        .collect()
}

fn text_value_columns(db: &Database, table: &str) -> Vec<String> {
    let t = match db.table(table) {
        Ok(t) => t,
        Err(_) => return Vec::new(),
    };
    t.columns().iter().filter(|c| c.data_type() == DataType::Text).map(|c| c.name.clone()).collect()
}

/// Apply a set of adaptation actions to a database.
pub fn apply_adaptations(db: &mut Database, actions: &[AdaptAction]) -> Result<()> {
    for a in actions {
        match a {
            AdaptAction::ReplaceNulls { table, column, default } => {
                db.update_table(table, |t| {
                    t.column_mut(column)?.replace_nulls(default);
                    Ok(())
                })?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;
    use crate::parser::parse_udf;
    use graceful_storage::datagen::{generate, schema};

    fn test_db() -> Database {
        generate(&schema("imdb"), 0.02, 11)
    }

    #[test]
    fn generated_udfs_parse_and_round_trip() {
        let db = test_db();
        let mut rng = Rng::seed(1);
        let g = UdfGenerator::default();
        for _ in 0..40 {
            let u = g.generate(&db, &mut rng).unwrap();
            let reparsed = parse_udf(&u.source)
                .unwrap_or_else(|e| panic!("generated UDF failed to parse: {e}\n{}", u.source));
            assert_eq!(u.def, reparsed, "round trip mismatch:\n{}", u.source);
        }
    }

    #[test]
    fn generated_udfs_respect_structural_bounds() {
        let db = test_db();
        let mut rng = Rng::seed(2);
        let g = UdfGenerator::default();
        for _ in 0..60 {
            let u = g.generate(&db, &mut rng).unwrap();
            assert!(u.def.branch_count() <= 6, "too many branches:\n{}", u.source);
            assert!(u.def.loop_count() <= 3, "too many loops:\n{}", u.source);
            assert!(!u.input_columns.is_empty());
            assert_eq!(u.def.params.len(), u.input_columns.len());
        }
    }

    #[test]
    fn generated_udfs_evaluate_on_real_rows() {
        let mut db = test_db();
        let mut rng = Rng::seed(3);
        let g = UdfGenerator::default();
        let mut interp = Interpreter::default();
        for k in 0..30 {
            let u = g.generate(&db, &mut rng).unwrap();
            apply_adaptations(&mut db, &u.adaptations).unwrap();
            let table = db.table(&u.table).unwrap();
            let cols: Vec<_> = u.input_columns.iter().map(|c| table.column(c).unwrap()).collect();
            for row in 0..table.num_rows().min(25) {
                let args: Vec<Value> = cols.iter().map(|c| c.value(row)).collect();
                let out = interp
                    .eval(&u.def, &args)
                    .unwrap_or_else(|e| panic!("udf #{k} failed on row {row}: {e}\n{}", u.source));
                assert!(out.cost.total > 0.0);
            }
        }
    }

    #[test]
    fn adaptations_remove_nulls_from_inputs() {
        let mut db = generate(&schema("walmart"), 0.2, 17);
        let mut rng = Rng::seed(4);
        let g = UdfGenerator::default();
        // Force generation on the table with a nullable column until it picks
        // the nullable `markdown` column.
        for _ in 0..80 {
            let u = g.generate_for_table(&db, "sales", &mut rng).unwrap();
            if u.input_columns.iter().any(|c| c == "markdown") {
                assert!(
                    u.adaptations.iter().any(|a| matches!(
                        a,
                        AdaptAction::ReplaceNulls { column, .. } if column == "markdown"
                    )),
                    "expected a ReplaceNulls adaptation"
                );
                apply_adaptations(&mut db, &u.adaptations).unwrap();
                let frac = db.table("sales").unwrap().column("markdown").unwrap().null_fraction();
                assert_eq!(frac, 0.0);
                return;
            }
        }
        panic!("generator never picked the nullable column");
    }

    #[test]
    fn op_counts_land_in_configured_range() {
        let db = test_db();
        let mut rng = Rng::seed(5);
        let g = UdfGenerator::default();
        let mut total = 0usize;
        for _ in 0..40 {
            let u = g.generate(&db, &mut rng).unwrap();
            let ops = u.def.op_count();
            assert!(ops >= 5, "udf too trivial ({ops} ops):\n{}", u.source);
            total += ops;
        }
        let avg = total / 40;
        assert!((10..=200).contains(&avg), "avg ops {avg} outside Table II range");
    }

    #[test]
    fn determinism() {
        let db = test_db();
        let g = UdfGenerator::default();
        let a = g.generate(&db, &mut Rng::seed(42)).unwrap();
        let b = g.generate(&db, &mut Rng::seed(42)).unwrap();
        assert_eq!(a.source, b.source);
        assert_eq!(a.input_columns, b.input_columns);
    }
}
