//! Scalar operation kernels shared by the tree-walking interpreter and the
//! bytecode VM.
//!
//! Both backends must produce **bit-identical** values *and* bit-identical
//! [`CostCounter`] totals for every UDF (the differential property suite
//! enforces this over the generated corpus). The only way to guarantee that
//! is to have exactly one implementation of each scalar operation, with the
//! cost-accounting calls baked into it in a fixed order — so the kernels
//! live here and the backends only differ in *how they traverse* the UDF.

use crate::ast::{BinOp, CmpOp, UnOp};
use crate::costs::{CostCounter, CostWeights};
use crate::libfns::LibFn;
use graceful_common::Result;
use graceful_storage::Value;

/// Apply a unary operator, accounting one (fast) arithmetic op.
///
/// Negation of `i64::MIN` is pinned to `i64::MIN` (two's-complement wrap, the
/// release-mode behaviour) instead of the debug-only overflow panic `-i` hits.
pub fn apply_unary(w: &CostWeights, op: UnOp, v: &Value, cost: &mut CostCounter) -> Value {
    cost.add_arith(w, false);
    match op {
        UnOp::Neg => match v {
            Value::Int(i) => Value::Int(i.wrapping_neg()),
            Value::Float(f) => Value::Float(-f),
            _ => Value::Null,
        },
        UnOp::Not => Value::Bool(!v.truthy()),
    }
}

/// `np.sign` semantics: `0.0` for ±0 (where `f64::signum` returns ±1),
/// `±1.0` for everything else of that sign, `NaN` passed through.
pub fn np_sign(x: f64) -> f64 {
    if x == 0.0 {
        0.0
    } else {
        x.signum()
    }
}

/// `np.clip(x, lo, hi)` with a well-ordered upper bound and **no panic**:
/// `f64::clamp` aborts when a bound is NaN, which a pathological UDF can
/// feed it (e.g. `math.sin` of an overflowed power). Identical to
/// `x.clamp(lo, hi.max(lo))` for every non-NaN bound — NaN `x` passes
/// through unchanged — while a NaN bound is pinned to "absent" (the other
/// bound still applies) instead of aborting the query.
pub fn np_clip(x: f64, lo: f64, hi: f64) -> f64 {
    let hi = hi.max(lo);
    let mut v = x;
    if v < lo {
        v = lo;
    }
    if v > hi {
        v = hi;
    }
    v
}

/// The float→int conversion used by `math.floor` / `math.ceil` / `int(..)`:
/// Rust's saturating `as` cast — `NaN → 0`, values beyond the `i64` range
/// (±inf included) clamp to `i64::MIN`/`i64::MAX`. Routed through one helper
/// so every backend (tree-walker, VM, columnar) pins the same edge semantics.
pub fn f64_to_i64(x: f64) -> i64 {
    x as i64
}

/// Apply a binary operator, accounting its work.
///
/// String concatenation (`Text + Text`) and repetition (`Text * Int`) charge
/// string costs; every other combination charges an arithmetic op (slow-path
/// surcharge for `**`, `//`, `%`) and follows NULL-propagation semantics.
pub fn apply_binary(
    w: &CostWeights,
    op: BinOp,
    l: &Value,
    r: &Value,
    cost: &mut CostCounter,
) -> Result<Value> {
    // String concatenation.
    if op == BinOp::Add {
        if let (Value::Text(a), Value::Text(b)) = (l, r) {
            cost.add_string(w, a.len() + b.len());
            return Ok(Value::Text(format!("{a}{b}")));
        }
    }
    // String repetition `s * n`.
    if op == BinOp::Mul {
        if let (Value::Text(a), Value::Int(n)) = (l, r) {
            let n = (*n).clamp(0, 64) as usize;
            cost.add_string(w, a.len() * n);
            return Ok(Value::Text(a.repeat(n)));
        }
    }
    let slow = matches!(op, BinOp::Pow | BinOp::FloorDiv | BinOp::Mod);
    cost.add_arith(w, slow);
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    // Integer fast path keeps int-typed data int-typed.
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        let (a, b) = (*a, *b);
        return Ok(match op {
            BinOp::Add => Value::Int(a.wrapping_add(b)),
            BinOp::Sub => Value::Int(a.wrapping_sub(b)),
            BinOp::Mul => Value::Int(a.wrapping_mul(b)),
            BinOp::Div => {
                if b == 0 {
                    Value::Null
                } else {
                    Value::Float(a as f64 / b as f64)
                }
            }
            BinOp::Mod => {
                if b == 0 {
                    Value::Null
                } else {
                    // checked: `i64::MIN.rem_euclid(-1)` overflows (panics in
                    // debug builds). Pinned result for that single pair is 0,
                    // the mathematical remainder.
                    Value::Int(a.checked_rem_euclid(b).unwrap_or(0))
                }
            }
            BinOp::FloorDiv => {
                if b == 0 {
                    Value::Null
                } else {
                    // checked: `i64::MIN.div_euclid(-1)` overflows; the true
                    // quotient 2^63 is unrepresentable, so pin the saturated
                    // i64::MAX.
                    Value::Int(a.checked_div_euclid(b).unwrap_or(i64::MAX))
                }
            }
            BinOp::Pow => {
                if (0..=16).contains(&b) {
                    Value::Int(a.saturating_pow(b as u32))
                } else {
                    Value::Float((a as f64).powf(b as f64))
                }
            }
        });
    }
    let (a, b) = match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => (a, b),
        _ => return Ok(Value::Null),
    };
    let out = match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => {
            if b == 0.0 {
                return Ok(Value::Null);
            }
            a / b
        }
        BinOp::Mod => {
            if b == 0.0 {
                return Ok(Value::Null);
            }
            a.rem_euclid(b)
        }
        BinOp::FloorDiv => {
            if b == 0.0 {
                return Ok(Value::Null);
            }
            (a / b).floor()
        }
        BinOp::Pow => sanitize(a.powf(b)),
    };
    Ok(Value::Float(sanitize(out)))
}

/// Apply a library/builtin function (or string method when `recv` is set),
/// accounting its work.
pub fn apply_lib(
    w: &CostWeights,
    f: LibFn,
    recv: Option<&Value>,
    args: &[Value],
    cost: &mut CostCounter,
) -> Result<Value> {
    use LibFn::*;
    cost.add_lib_call(f);
    // NULL propagation: any NULL input yields NULL (cheap early exit,
    // mirroring how adapters skip the Python call for NULL rows).
    if recv.is_some_and(Value::is_null) || args.iter().any(Value::is_null) {
        return Ok(Value::Null);
    }
    let num = |i: usize| args.get(i).and_then(Value::as_f64);
    let out = match f {
        MathSqrt | NpSqrt => num(0).map(|x| Value::Float(sanitize(x.abs().sqrt()))),
        MathPow | NpPower => match (num(0), num(1)) {
            (Some(a), Some(b)) => Some(Value::Float(sanitize(a.powf(b)))),
            _ => None,
        },
        MathLog | NpLog => num(0).map(|x| Value::Float(sanitize(x.abs().max(1e-12).ln()))),
        MathExp | NpExp => num(0).map(|x| Value::Float(sanitize(x.min(700.0).exp()))),
        MathSin => num(0).map(|x| Value::Float(x.sin())),
        MathCos => num(0).map(|x| Value::Float(x.cos())),
        MathAtan => num(0).map(|x| Value::Float(x.atan())),
        MathFloor => num(0).map(|x| Value::Int(f64_to_i64(x.floor()))),
        MathCeil => num(0).map(|x| Value::Int(f64_to_i64(x.ceil()))),
        MathFabs | NpAbs => num(0).map(|x| Value::Float(x.abs())),
        NpMinimum => match (num(0), num(1)) {
            (Some(a), Some(b)) => Some(Value::Float(a.min(b))),
            _ => None,
        },
        NpMaximum => match (num(0), num(1)) {
            (Some(a), Some(b)) => Some(Value::Float(a.max(b))),
            _ => None,
        },
        NpClip => match (num(0), num(1), num(2)) {
            (Some(x), Some(lo), Some(hi)) => Some(Value::Float(np_clip(x, lo, hi))),
            _ => None,
        },
        // `np.sign(0) == 0` (and `np.sign(-0.0) == 0`), unlike
        // `f64::signum`, which maps ±0 to ±1.
        NpSign => num(0).map(|x| Value::Float(np_sign(x))),
        NpRound | BuiltinRound => num(0).map(|x| Value::Float(x.round())),
        BuiltinAbs => match args.first() {
            // checked: `i64::MIN.abs()` overflows (debug panic, release
            // wrap-to-MIN). Python's arbitrary-precision 2^63 is
            // unrepresentable, so pin the saturated i64::MAX.
            Some(Value::Int(i)) => Some(Value::Int(i.checked_abs().unwrap_or(i64::MAX))),
            Some(v) => v.as_f64().map(|x| Value::Float(x.abs())),
            None => None,
        },
        BuiltinInt => num(0).map(|x| Value::Int(f64_to_i64(x))),
        BuiltinFloat => num(0).map(Value::Float),
        BuiltinMin => match (num(0), num(1)) {
            (Some(a), Some(b)) => Some(Value::Float(a.min(b))),
            _ => None,
        },
        BuiltinMax => match (num(0), num(1)) {
            (Some(a), Some(b)) => Some(Value::Float(a.max(b))),
            _ => None,
        },
        BuiltinLen => match args.first() {
            Some(Value::Text(s)) => {
                cost.add_string(w, 0);
                Some(Value::Int(s.len() as i64))
            }
            _ => None,
        },
        BuiltinStr => {
            let s = args.first().map(|v| match v {
                Value::Text(t) => t.clone(),
                other => other.to_string(),
            });
            s.map(|s| {
                cost.add_string(w, s.len());
                Value::Text(s)
            })
        }
        // String methods (receiver required).
        StrUpper | StrLower | StrStrip | StrReplace | StrStartswith | StrEndswith | StrFind
        | StrSplitCount => {
            let s = match recv {
                Some(Value::Text(s)) => s,
                _ => return Ok(Value::Null),
            };
            cost.add_string(w, s.len());
            let arg_str = |i: usize| args.get(i).and_then(|v| v.as_str().map(str::to_string));
            match f {
                StrUpper => Some(Value::Text(s.to_uppercase())),
                StrLower => Some(Value::Text(s.to_lowercase())),
                StrStrip => Some(Value::Text(s.trim().to_string())),
                StrReplace => match (arg_str(0), arg_str(1)) {
                    (Some(from), Some(to)) if !from.is_empty() => {
                        Some(Value::Text(s.replace(&from, &to)))
                    }
                    _ => Some(Value::Text(s.clone())),
                },
                StrStartswith => arg_str(0).map(|p| Value::Bool(s.starts_with(&p))),
                StrEndswith => arg_str(0).map(|p| Value::Bool(s.ends_with(&p))),
                StrFind => {
                    arg_str(0).map(|p| Value::Int(s.find(&p).map(|i| i as i64).unwrap_or(-1)))
                }
                StrSplitCount => arg_str(0).map(|p| {
                    let count = if p.is_empty() { 1 } else { s.matches(&p).count() + 1 };
                    Value::Int(count as i64)
                }),
                _ => unreachable!("string method match is exhaustive"),
            }
        }
    };
    Ok(out.unwrap_or(Value::Null))
}

/// SQL/Python-style comparison: NULL never compares true.
pub fn compare(op: CmpOp, l: &Value, r: &Value) -> bool {
    use std::cmp::Ordering::*;
    match l.compare(r) {
        None => false,
        Some(ord) => match op {
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
        },
    }
}

/// Replace NaN/inf (from overflowing powf etc.) with large-but-finite values
/// so downstream filters and aggregates stay well-defined.
pub fn sanitize(x: f64) -> f64 {
    if x.is_nan() {
        0.0
    } else if x.is_infinite() {
        if x > 0.0 {
            1e300
        } else {
            -1e300
        }
    } else {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_string_paths_charge_string_costs() {
        let w = CostWeights::default();
        let mut c = CostCounter::new();
        let out = apply_binary(
            &w,
            BinOp::Add,
            &Value::Text("ab".into()),
            &Value::Text("cd".into()),
            &mut c,
        )
        .unwrap();
        assert_eq!(out, Value::Text("abcd".into()));
        assert_eq!(c.string_ops, 1);
        assert_eq!(c.arith_ops, 0);
    }

    #[test]
    fn lib_null_propagation_still_charges_the_call() {
        let w = CostWeights::default();
        let mut c = CostCounter::new();
        let out = apply_lib(&w, LibFn::MathSqrt, None, &[Value::Null], &mut c).unwrap();
        assert_eq!(out, Value::Null);
        assert_eq!(c.lib_calls, 1);
    }

    #[test]
    fn np_sign_is_zero_at_zero() {
        let w = CostWeights::default();
        let mut c = CostCounter::new();
        let sign = |v: f64, c: &mut CostCounter| {
            apply_lib(&w, LibFn::NpSign, None, &[Value::Float(v)], c).unwrap()
        };
        assert_eq!(sign(0.0, &mut c), Value::Float(0.0));
        assert_eq!(sign(-0.0, &mut c), Value::Float(0.0));
        assert_eq!(sign(3.5, &mut c), Value::Float(1.0));
        assert_eq!(sign(-2.0, &mut c), Value::Float(-1.0));
        let int_zero = apply_lib(&w, LibFn::NpSign, None, &[Value::Int(0)], &mut c).unwrap();
        assert_eq!(int_zero, Value::Float(0.0));
    }

    #[test]
    fn builtin_abs_saturates_at_i64_min() {
        let w = CostWeights::default();
        let mut c = CostCounter::new();
        let abs = |v: Value, c: &mut CostCounter| {
            apply_lib(&w, LibFn::BuiltinAbs, None, &[v], c).unwrap()
        };
        assert_eq!(abs(Value::Int(i64::MIN), &mut c), Value::Int(i64::MAX));
        assert_eq!(abs(Value::Int(-7), &mut c), Value::Int(7));
        assert_eq!(abs(Value::Float(-2.5), &mut c), Value::Float(2.5));
    }

    #[test]
    fn int_mod_and_floordiv_overflow_pair_is_pinned() {
        let w = CostWeights::default();
        let mut c = CostCounter::new();
        let run = |op: BinOp, a: i64, b: i64, c: &mut CostCounter| {
            apply_binary(&w, op, &Value::Int(a), &Value::Int(b), c).unwrap()
        };
        assert_eq!(run(BinOp::Mod, i64::MIN, -1, &mut c), Value::Int(0));
        assert_eq!(run(BinOp::FloorDiv, i64::MIN, -1, &mut c), Value::Int(i64::MAX));
        assert_eq!(run(BinOp::Mod, 7, 3, &mut c), Value::Int(1));
        assert_eq!(run(BinOp::FloorDiv, -7, 2, &mut c), Value::Int(-4));
    }

    #[test]
    fn unary_neg_wraps_at_i64_min() {
        let w = CostWeights::default();
        let mut c = CostCounter::new();
        assert_eq!(apply_unary(&w, UnOp::Neg, &Value::Int(i64::MIN), &mut c), Value::Int(i64::MIN));
        assert_eq!(apply_unary(&w, UnOp::Neg, &Value::Int(4), &mut c), Value::Int(-4));
        assert_eq!(apply_unary(&w, UnOp::Not, &Value::Null, &mut c), Value::Bool(true));
        assert_eq!(c.arith_ops, 3);
    }

    #[test]
    fn np_clip_matches_clamp_and_never_panics() {
        assert_eq!(np_clip(5.0, 0.0, 10.0), 5.0);
        assert_eq!(np_clip(-3.0, 0.0, 10.0), 0.0);
        assert_eq!(np_clip(99.0, 0.0, 10.0), 10.0);
        // Inverted bounds behave like clamp(lo, hi.max(lo)).
        assert_eq!(np_clip(5.0, 8.0, 2.0), 8.0);
        // NaN x passes through (like f64::clamp).
        assert!(np_clip(f64::NAN, 0.0, 10.0).is_nan());
        // NaN bounds are pinned to "absent" instead of panicking.
        assert_eq!(np_clip(50.0, f64::NAN, 10.0), 10.0);
        assert_eq!(np_clip(-50.0, 0.0, f64::NAN), 0.0);
    }

    #[test]
    fn float_to_int_cast_edges_saturate() {
        assert_eq!(f64_to_i64(f64::NAN), 0);
        assert_eq!(f64_to_i64(f64::INFINITY), i64::MAX);
        assert_eq!(f64_to_i64(f64::NEG_INFINITY), i64::MIN);
        assert_eq!(f64_to_i64(1e19), i64::MAX);
        assert_eq!(f64_to_i64(-1e19), i64::MIN);
        assert_eq!(f64_to_i64(2.75), 2);
    }

    #[test]
    fn sanitize_bounds() {
        assert_eq!(sanitize(f64::NAN), 0.0);
        assert_eq!(sanitize(f64::INFINITY), 1e300);
        assert_eq!(sanitize(f64::NEG_INFINITY), -1e300);
        assert_eq!(sanitize(1.25), 1.25);
    }
}
