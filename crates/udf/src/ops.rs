//! Scalar operation kernels shared by the tree-walking interpreter and the
//! bytecode VM.
//!
//! Both backends must produce **bit-identical** values *and* bit-identical
//! [`CostCounter`] totals for every UDF (the differential property suite
//! enforces this over the generated corpus). The only way to guarantee that
//! is to have exactly one implementation of each scalar operation, with the
//! cost-accounting calls baked into it in a fixed order — so the kernels
//! live here and the backends only differ in *how they traverse* the UDF.

use crate::ast::{BinOp, CmpOp};
use crate::costs::{CostCounter, CostWeights};
use crate::libfns::LibFn;
use graceful_common::Result;
use graceful_storage::Value;

/// Apply a binary operator, accounting its work.
///
/// String concatenation (`Text + Text`) and repetition (`Text * Int`) charge
/// string costs; every other combination charges an arithmetic op (slow-path
/// surcharge for `**`, `//`, `%`) and follows NULL-propagation semantics.
pub fn apply_binary(
    w: &CostWeights,
    op: BinOp,
    l: &Value,
    r: &Value,
    cost: &mut CostCounter,
) -> Result<Value> {
    // String concatenation.
    if op == BinOp::Add {
        if let (Value::Text(a), Value::Text(b)) = (l, r) {
            cost.add_string(w, a.len() + b.len());
            return Ok(Value::Text(format!("{a}{b}")));
        }
    }
    // String repetition `s * n`.
    if op == BinOp::Mul {
        if let (Value::Text(a), Value::Int(n)) = (l, r) {
            let n = (*n).clamp(0, 64) as usize;
            cost.add_string(w, a.len() * n);
            return Ok(Value::Text(a.repeat(n)));
        }
    }
    let slow = matches!(op, BinOp::Pow | BinOp::FloorDiv | BinOp::Mod);
    cost.add_arith(w, slow);
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    // Integer fast path keeps int-typed data int-typed.
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        let (a, b) = (*a, *b);
        return Ok(match op {
            BinOp::Add => Value::Int(a.wrapping_add(b)),
            BinOp::Sub => Value::Int(a.wrapping_sub(b)),
            BinOp::Mul => Value::Int(a.wrapping_mul(b)),
            BinOp::Div => {
                if b == 0 {
                    Value::Null
                } else {
                    Value::Float(a as f64 / b as f64)
                }
            }
            BinOp::Mod => {
                if b == 0 {
                    Value::Null
                } else {
                    Value::Int(a.rem_euclid(b))
                }
            }
            BinOp::FloorDiv => {
                if b == 0 {
                    Value::Null
                } else {
                    Value::Int(a.div_euclid(b))
                }
            }
            BinOp::Pow => {
                if (0..=16).contains(&b) {
                    Value::Int(a.saturating_pow(b as u32))
                } else {
                    Value::Float((a as f64).powf(b as f64))
                }
            }
        });
    }
    let (a, b) = match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => (a, b),
        _ => return Ok(Value::Null),
    };
    let out = match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => {
            if b == 0.0 {
                return Ok(Value::Null);
            }
            a / b
        }
        BinOp::Mod => {
            if b == 0.0 {
                return Ok(Value::Null);
            }
            a.rem_euclid(b)
        }
        BinOp::FloorDiv => {
            if b == 0.0 {
                return Ok(Value::Null);
            }
            (a / b).floor()
        }
        BinOp::Pow => sanitize(a.powf(b)),
    };
    Ok(Value::Float(sanitize(out)))
}

/// Apply a library/builtin function (or string method when `recv` is set),
/// accounting its work.
pub fn apply_lib(
    w: &CostWeights,
    f: LibFn,
    recv: Option<&Value>,
    args: &[Value],
    cost: &mut CostCounter,
) -> Result<Value> {
    use LibFn::*;
    cost.add_lib_call(f);
    // NULL propagation: any NULL input yields NULL (cheap early exit,
    // mirroring how adapters skip the Python call for NULL rows).
    if recv.is_some_and(Value::is_null) || args.iter().any(Value::is_null) {
        return Ok(Value::Null);
    }
    let num = |i: usize| args.get(i).and_then(Value::as_f64);
    let out = match f {
        MathSqrt | NpSqrt => num(0).map(|x| Value::Float(sanitize(x.abs().sqrt()))),
        MathPow | NpPower => match (num(0), num(1)) {
            (Some(a), Some(b)) => Some(Value::Float(sanitize(a.powf(b)))),
            _ => None,
        },
        MathLog | NpLog => num(0).map(|x| Value::Float(sanitize(x.abs().max(1e-12).ln()))),
        MathExp | NpExp => num(0).map(|x| Value::Float(sanitize(x.min(700.0).exp()))),
        MathSin => num(0).map(|x| Value::Float(x.sin())),
        MathCos => num(0).map(|x| Value::Float(x.cos())),
        MathAtan => num(0).map(|x| Value::Float(x.atan())),
        MathFloor => num(0).map(|x| Value::Int(x.floor() as i64)),
        MathCeil => num(0).map(|x| Value::Int(x.ceil() as i64)),
        MathFabs | NpAbs => num(0).map(|x| Value::Float(x.abs())),
        NpMinimum => match (num(0), num(1)) {
            (Some(a), Some(b)) => Some(Value::Float(a.min(b))),
            _ => None,
        },
        NpMaximum => match (num(0), num(1)) {
            (Some(a), Some(b)) => Some(Value::Float(a.max(b))),
            _ => None,
        },
        NpClip => match (num(0), num(1), num(2)) {
            (Some(x), Some(lo), Some(hi)) => Some(Value::Float(x.clamp(lo, hi.max(lo)))),
            _ => None,
        },
        NpSign => num(0).map(|x| Value::Float(x.signum())),
        NpRound | BuiltinRound => num(0).map(|x| Value::Float(x.round())),
        BuiltinAbs => match args.first() {
            Some(Value::Int(i)) => Some(Value::Int(i.abs())),
            Some(v) => v.as_f64().map(|x| Value::Float(x.abs())),
            None => None,
        },
        BuiltinInt => num(0).map(|x| Value::Int(x as i64)),
        BuiltinFloat => num(0).map(Value::Float),
        BuiltinMin => match (num(0), num(1)) {
            (Some(a), Some(b)) => Some(Value::Float(a.min(b))),
            _ => None,
        },
        BuiltinMax => match (num(0), num(1)) {
            (Some(a), Some(b)) => Some(Value::Float(a.max(b))),
            _ => None,
        },
        BuiltinLen => match args.first() {
            Some(Value::Text(s)) => {
                cost.add_string(w, 0);
                Some(Value::Int(s.len() as i64))
            }
            _ => None,
        },
        BuiltinStr => {
            let s = args.first().map(|v| match v {
                Value::Text(t) => t.clone(),
                other => other.to_string(),
            });
            s.map(|s| {
                cost.add_string(w, s.len());
                Value::Text(s)
            })
        }
        // String methods (receiver required).
        StrUpper | StrLower | StrStrip | StrReplace | StrStartswith | StrEndswith | StrFind
        | StrSplitCount => {
            let s = match recv {
                Some(Value::Text(s)) => s,
                _ => return Ok(Value::Null),
            };
            cost.add_string(w, s.len());
            let arg_str = |i: usize| args.get(i).and_then(|v| v.as_str().map(str::to_string));
            match f {
                StrUpper => Some(Value::Text(s.to_uppercase())),
                StrLower => Some(Value::Text(s.to_lowercase())),
                StrStrip => Some(Value::Text(s.trim().to_string())),
                StrReplace => match (arg_str(0), arg_str(1)) {
                    (Some(from), Some(to)) if !from.is_empty() => {
                        Some(Value::Text(s.replace(&from, &to)))
                    }
                    _ => Some(Value::Text(s.clone())),
                },
                StrStartswith => arg_str(0).map(|p| Value::Bool(s.starts_with(&p))),
                StrEndswith => arg_str(0).map(|p| Value::Bool(s.ends_with(&p))),
                StrFind => {
                    arg_str(0).map(|p| Value::Int(s.find(&p).map(|i| i as i64).unwrap_or(-1)))
                }
                StrSplitCount => arg_str(0).map(|p| {
                    let count = if p.is_empty() { 1 } else { s.matches(&p).count() + 1 };
                    Value::Int(count as i64)
                }),
                _ => unreachable!("string method match is exhaustive"),
            }
        }
    };
    Ok(out.unwrap_or(Value::Null))
}

/// SQL/Python-style comparison: NULL never compares true.
pub fn compare(op: CmpOp, l: &Value, r: &Value) -> bool {
    use std::cmp::Ordering::*;
    match l.compare(r) {
        None => false,
        Some(ord) => match op {
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
        },
    }
}

/// Replace NaN/inf (from overflowing powf etc.) with large-but-finite values
/// so downstream filters and aggregates stay well-defined.
pub fn sanitize(x: f64) -> f64 {
    if x.is_nan() {
        0.0
    } else if x.is_infinite() {
        if x > 0.0 {
            1e300
        } else {
            -1e300
        }
    } else {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_string_paths_charge_string_costs() {
        let w = CostWeights::default();
        let mut c = CostCounter::new();
        let out = apply_binary(
            &w,
            BinOp::Add,
            &Value::Text("ab".into()),
            &Value::Text("cd".into()),
            &mut c,
        )
        .unwrap();
        assert_eq!(out, Value::Text("abcd".into()));
        assert_eq!(c.string_ops, 1);
        assert_eq!(c.arith_ops, 0);
    }

    #[test]
    fn lib_null_propagation_still_charges_the_call() {
        let w = CostWeights::default();
        let mut c = CostCounter::new();
        let out = apply_lib(&w, LibFn::MathSqrt, None, &[Value::Null], &mut c).unwrap();
        assert_eq!(out, Value::Null);
        assert_eq!(c.lib_calls, 1);
    }

    #[test]
    fn sanitize_bounds() {
        assert_eq!(sanitize(f64::NAN), 0.0);
        assert_eq!(sanitize(f64::INFINITY), 1e300);
        assert_eq!(sanitize(f64::NEG_INFINITY), -1e300);
        assert_eq!(sanitize(1.25), 1.25);
    }
}
