//! The scalar UDF language of the GRACEFUL reproduction.
//!
//! The paper studies *scalar Python UDFs*: row-by-row functions containing
//! branches, loops, arithmetic and string operations and calls into `math` /
//! `numpy`. CPython is not part of this reproduction, so this crate
//! implements a Python-like UDF language end to end:
//!
//! * [`ast`] — expressions, statements and function definitions,
//! * [`lexer`] / [`parser`] — an indentation-aware Python-subset parser so
//!   UDFs exist as real source text (and round-trip through [`printer`]),
//! * [`libfns`] — the closed registry of `math`/`numpy`/string builtins with
//!   per-call cost weights (the featurization vocabulary of Table I),
//! * [`costs`] — the work-unit cost model that turns interpreted operations
//!   into deterministic simulated nanoseconds,
//! * [`interp`] — a tree-walking interpreter that both *computes* the UDF
//!   result for a row and *accounts* every operation it executes,
//! * [`bytecode`] / [`vm`] — a register-based bytecode compiler (variables
//!   resolved to numeric slots at compile time) and a batch VM that evaluates
//!   compiled UDFs over whole row batches with zero per-row allocation while
//!   producing bit-identical values and costs to the tree-walker,
//! * [`ops`] — the scalar kernels both backends share (the mechanism behind
//!   that bit-identical guarantee),
//! * [`simd`] — a typed columnar execution path over the compiled bytecode:
//!   straight-line numeric segments run column-at-a-time over unboxed lanes
//!   with selection-vector branch divergence, falling back per row to the
//!   VM, with values and costs bit-identical to both backends,
//! * [`generator`] — the synthetic UDF generator of Section V (0–3 branches,
//!   0–3 loops, 10–150 ops, library calls, data-adaptation actions).

pub mod analysis;
pub mod ast;
pub mod bytecode;
pub mod costs;
pub mod generator;
pub mod interp;
pub mod lexer;
pub mod libfns;
pub mod ops;
pub mod parser;
pub mod printer;
pub mod simd;
pub mod typecheck;
pub mod vm;

pub use ast::{BinOp, CmpOp, Expr, Stmt, UdfDef, UnOp};
pub use bytecode::{compile, compile_with, InstrClass, Program, SimdShape, SlotTable};
pub use costs::{CostCounter, CostWeights};
pub use generator::{AdaptAction, GeneratedUdf, UdfGenConfig, UdfGenerator};
pub use interp::{EvalOutcome, Interpreter, MAX_WHILE_ITERS};
pub use libfns::LibFn;
pub use parser::parse_udf;
pub use printer::print_udf;
pub use simd::{SimdBatchStats, TypedCol};
pub use typecheck::infer_return_type;
pub use vm::Vm;
