//! The work-unit cost model of the UDF interpreter.
//!
//! The paper labels its corpus with wall-clock runtimes measured in DuckDB on
//! a fixed machine (142 hours of execution). A reproduction cannot rely on
//! wall clocks — CI machines are noisy and shared — so the interpreter and
//! the execution engine *count work*: every operation they actually perform
//! adds a weighted number of work units, and one unit is defined as one
//! simulated nanosecond. The weights below are calibrated to the relative
//! magnitudes a CPython-in-DuckDB stack exhibits (interpreter dispatch per
//! statement, boxed arithmetic, expensive numpy scalar ufuncs, per-character
//! string costs, per-row invocation/conversion overhead).
//!
//! What matters for reproducing the paper is not the absolute values but the
//! *relations*: loops multiply body cost by trip count, branch paths differ
//! in cost, UDF invocation has per-row overhead, and an expensive UDF
//! dominates scan/join costs so pull-up decisions matter (Figure 1).

use crate::libfns::LibFn;

/// Cost weights in work units (≈ simulated nanoseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct CostWeights {
    /// Per interpreted statement (dispatch overhead).
    pub stmt_dispatch: f64,
    /// Per binary arithmetic operation on numbers.
    pub arith: f64,
    /// Extra cost for `**` and `//` (slow paths).
    pub arith_slow_extra: f64,
    /// Per comparison.
    pub compare: f64,
    /// Per-character cost of string operations (concat, replace, case...).
    pub str_per_char: f64,
    /// Base cost of any string operation.
    pub str_base: f64,
    /// Per loop iteration (range protocol / condition re-check).
    pub loop_iter: f64,
    /// Per branch evaluation (jump + condition dispatch).
    pub branch: f64,
    /// Per variable assignment (store + refcount in CPython terms).
    pub assign: f64,
    /// Per UDF invocation: fixed overhead (frame setup, GIL, ...).
    pub invoke_base: f64,
    /// Per argument conversion DBMS→Python.
    pub invoke_per_arg: f64,
    /// Extra per-character cost converting text arguments.
    pub invoke_text_per_char: f64,
    /// Per returned value conversion Python→DBMS.
    pub return_conv: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        CostWeights {
            stmt_dispatch: 28.0,
            arith: 32.0,
            arith_slow_extra: 45.0,
            compare: 30.0,
            str_per_char: 2.2,
            str_base: 36.0,
            loop_iter: 42.0,
            branch: 34.0,
            assign: 22.0,
            invoke_base: 420.0,
            invoke_per_arg: 65.0,
            invoke_text_per_char: 1.6,
            return_conv: 140.0,
        }
    }
}

/// Accumulated work with per-kind counters.
///
/// The total is what turns into simulated runtime; the counters exist for
/// tests and for the ablation analyses (e.g. verifying that loop-heavy UDFs
/// really execute more iterations).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CostCounter {
    /// Total work units.
    pub total: f64,
    pub arith_ops: u64,
    pub compare_ops: u64,
    pub string_ops: u64,
    pub string_chars: u64,
    pub lib_calls: u64,
    pub branches: u64,
    pub loop_iters: u64,
    pub assigns: u64,
    pub statements: u64,
}

impl CostCounter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_stmt(&mut self, w: &CostWeights) {
        self.statements += 1;
        self.total += w.stmt_dispatch;
    }

    pub fn add_arith(&mut self, w: &CostWeights, slow: bool) {
        self.arith_ops += 1;
        self.total += w.arith + if slow { w.arith_slow_extra } else { 0.0 };
    }

    pub fn add_compare(&mut self, w: &CostWeights) {
        self.compare_ops += 1;
        self.total += w.compare;
    }

    pub fn add_string(&mut self, w: &CostWeights, chars: usize) {
        self.string_ops += 1;
        self.string_chars += chars as u64;
        self.total += w.str_base + w.str_per_char * chars as f64;
    }

    pub fn add_lib_call(&mut self, f: LibFn) {
        self.lib_calls += 1;
        self.total += f.base_cost();
    }

    pub fn add_branch(&mut self, w: &CostWeights) {
        self.branches += 1;
        self.total += w.branch;
    }

    pub fn add_loop_iter(&mut self, w: &CostWeights) {
        self.loop_iters += 1;
        self.total += w.loop_iter;
    }

    pub fn add_assign(&mut self, w: &CostWeights) {
        self.assigns += 1;
        self.total += w.assign;
    }

    pub fn add_invocation(&mut self, w: &CostWeights, n_args: usize, text_chars: usize) {
        self.total += w.invoke_base
            + w.invoke_per_arg * n_args as f64
            + w.invoke_text_per_char * text_chars as f64;
    }

    pub fn add_return(&mut self, w: &CostWeights) {
        self.total += w.return_conv;
    }

    /// Merge another counter into this one.
    pub fn merge(&mut self, other: &CostCounter) {
        self.total += other.total;
        self.arith_ops += other.arith_ops;
        self.compare_ops += other.compare_ops;
        self.string_ops += other.string_ops;
        self.string_chars += other.string_chars;
        self.lib_calls += other.lib_calls;
        self.branches += other.branches;
        self.loop_iters += other.loop_iters;
        self.assigns += other.assigns;
        self.statements += other.statements;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let w = CostWeights::default();
        let mut c = CostCounter::new();
        c.add_arith(&w, false);
        c.add_arith(&w, true);
        c.add_string(&w, 10);
        c.add_lib_call(LibFn::NpSqrt);
        assert_eq!(c.arith_ops, 2);
        assert_eq!(c.string_chars, 10);
        let expected = w.arith * 2.0
            + w.arith_slow_extra
            + w.str_base
            + w.str_per_char * 10.0
            + LibFn::NpSqrt.base_cost();
        assert!((c.total - expected).abs() < 1e-9);
    }

    #[test]
    fn merge_sums_everything() {
        let w = CostWeights::default();
        let mut a = CostCounter::new();
        a.add_branch(&w);
        let mut b = CostCounter::new();
        b.add_loop_iter(&w);
        b.add_loop_iter(&w);
        a.merge(&b);
        assert_eq!(a.branches, 1);
        assert_eq!(a.loop_iters, 2);
        assert!((a.total - (w.branch + 2.0 * w.loop_iter)).abs() < 1e-9);
    }

    #[test]
    fn invocation_costs_scale_with_args() {
        let w = CostWeights::default();
        let mut small = CostCounter::new();
        small.add_invocation(&w, 1, 0);
        let mut big = CostCounter::new();
        big.add_invocation(&w, 3, 40);
        assert!(big.total > small.total);
    }
}
