//! Abstract syntax tree of the UDF language.
//!
//! The language is the Python subset that covers the UDF corpus studied by
//! Gupta & Ramachandra ("Procedural extensions of SQL", VLDB'21), which the
//! paper uses to calibrate its generator: straight-line arithmetic/string
//! computation, `if`/`else` branches, `for i in range(...)` and bounded
//! `while` loops, calls into `math`/`numpy` and string methods, and a single
//! `return` per control path.

use crate::libfns::LibFn;

/// Binary arithmetic / string operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+` — numeric addition or string concatenation.
    Add,
    Sub,
    Mul,
    /// True division; the interpreter guards division by zero by returning
    /// NULL (the generator additionally guards denominators syntactically).
    Div,
    /// `%` (Python semantics on ints; `fmod` on floats).
    Mod,
    /// `**` (right associative).
    Pow,
    /// `//` floor division.
    FloorDiv,
}

impl BinOp {
    /// All operators, in one-hot order (Table I `ops` feature vocabulary).
    pub const ALL: [BinOp; 7] =
        [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div, BinOp::Mod, BinOp::Pow, BinOp::FloorDiv];

    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&o| o == self).expect("op in ALL")
    }

    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Pow => "**",
            BinOp::FloorDiv => "//",
        }
    }
}

/// Comparison operators (the `cmops` vocabulary of BRANCH nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl CmpOp {
    pub const ALL: [CmpOp; 6] = [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Eq, CmpOp::Ne];

    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&o| o == self).expect("op in ALL")
    }

    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        }
    }

    /// The comparison with operands swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
        }
    }

    /// The negated comparison (`not (a < b)` ⇔ `a >= b`).
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to a UDF parameter or a local variable.
    Name(String),
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    NoneLit,
    Unary {
        op: UnOp,
        operand: Box<Expr>,
    },
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    Compare {
        op: CmpOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// Short-circuit `and` / `or`.
    BoolOp {
        is_and: bool,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// Library / builtin call (`math.sqrt(x)`, `len(s)`, `int(x)`, ...).
    Call {
        func: LibFn,
        args: Vec<Expr>,
    },
    /// String method call (`s.upper()`, `s.replace(a, b)`, ...).
    Method {
        func: LibFn,
        recv: Box<Expr>,
        args: Vec<Expr>,
    },
}

impl Expr {
    pub fn name(n: &str) -> Expr {
        Expr::Name(n.to_string())
    }

    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary { op, left: Box::new(l), right: Box::new(r) }
    }

    pub fn cmp(op: CmpOp, l: Expr, r: Expr) -> Expr {
        Expr::Compare { op, left: Box::new(l), right: Box::new(r) }
    }

    pub fn call(func: LibFn, args: Vec<Expr>) -> Expr {
        Expr::Call { func, args }
    }

    /// Collect every `Name` referenced in this expression.
    pub fn names(&self, out: &mut Vec<String>) {
        match self {
            Expr::Name(n) if !out.contains(n) => {
                out.push(n.clone());
            }
            Expr::Unary { operand, .. } => operand.names(out),
            Expr::Binary { left, right, .. }
            | Expr::Compare { left, right, .. }
            | Expr::BoolOp { left, right, .. } => {
                left.names(out);
                right.names(out);
            }
            Expr::Call { args, .. } => args.iter().for_each(|a| a.names(out)),
            Expr::Method { recv, args, .. } => {
                recv.names(out);
                args.iter().for_each(|a| a.names(out));
            }
            _ => {}
        }
    }

    /// Count arithmetic/comparison/call operations in the expression —
    /// the "number of operations" notion of Table II.
    pub fn op_count(&self) -> usize {
        match self {
            Expr::Unary { operand, .. } => 1 + operand.op_count(),
            Expr::Binary { left, right, .. } | Expr::Compare { left, right, .. } => {
                1 + left.op_count() + right.op_count()
            }
            Expr::BoolOp { left, right, .. } => 1 + left.op_count() + right.op_count(),
            Expr::Call { args, .. } => 1 + args.iter().map(Expr::op_count).sum::<usize>(),
            Expr::Method { recv, args, .. } => {
                1 + recv.op_count() + args.iter().map(Expr::op_count).sum::<usize>()
            }
            _ => 0,
        }
    }

    /// All binary arithmetic operators used (for COMP featurization).
    pub fn bin_ops(&self, out: &mut Vec<BinOp>) {
        match self {
            Expr::Binary { op, left, right } => {
                out.push(*op);
                left.bin_ops(out);
                right.bin_ops(out);
            }
            Expr::Unary { operand, .. } => operand.bin_ops(out),
            Expr::Compare { left, right, .. } | Expr::BoolOp { left, right, .. } => {
                left.bin_ops(out);
                right.bin_ops(out);
            }
            Expr::Call { args, .. } => args.iter().for_each(|a| a.bin_ops(out)),
            Expr::Method { recv, args, .. } => {
                recv.bin_ops(out);
                args.iter().for_each(|a| a.bin_ops(out));
            }
            _ => {}
        }
    }

    /// All library functions called (for COMP `lib` featurization).
    pub fn lib_calls(&self, out: &mut Vec<LibFn>) {
        match self {
            Expr::Call { func, args } => {
                out.push(*func);
                args.iter().for_each(|a| a.lib_calls(out));
            }
            Expr::Method { func, recv, args } => {
                out.push(*func);
                recv.lib_calls(out);
                args.iter().for_each(|a| a.lib_calls(out));
            }
            Expr::Unary { operand, .. } => operand.lib_calls(out),
            Expr::Binary { left, right, .. }
            | Expr::Compare { left, right, .. }
            | Expr::BoolOp { left, right, .. } => {
                left.lib_calls(out);
                right.lib_calls(out);
            }
            _ => {}
        }
    }
}

/// Kind of loop, featurized on LOOP nodes (`loop_type`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopKind {
    For,
    While,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `target = expr`
    Assign { target: String, expr: Expr },
    /// `if cond: ... else: ...` (`elif` is desugared by the parser).
    If { cond: Expr, then_body: Vec<Stmt>, else_body: Vec<Stmt> },
    /// `for var in range(count): body`
    For { var: String, count: Expr, body: Vec<Stmt> },
    /// `while cond: body` — the interpreter enforces an iteration cap so
    /// generated/broken UDFs can never hang the engine.
    While { cond: Expr, body: Vec<Stmt> },
    /// `return expr`
    Return(Expr),
}

/// A full UDF definition.
#[derive(Debug, Clone, PartialEq)]
pub struct UdfDef {
    pub name: String,
    pub params: Vec<String>,
    pub body: Vec<Stmt>,
}

impl UdfDef {
    /// Total operation count across the body (Table II's 10–150 range).
    pub fn op_count(&self) -> usize {
        fn stmts(body: &[Stmt]) -> usize {
            body.iter()
                .map(|s| match s {
                    Stmt::Assign { expr, .. } => 1 + expr.op_count(),
                    Stmt::If { cond, then_body, else_body } => {
                        1 + cond.op_count() + stmts(then_body) + stmts(else_body)
                    }
                    Stmt::For { count, body, .. } => 1 + count.op_count() + stmts(body),
                    Stmt::While { cond, body } => 1 + cond.op_count() + stmts(body),
                    Stmt::Return(e) => e.op_count(),
                })
                .sum()
        }
        stmts(&self.body)
    }

    /// Number of `if` statements (branches) in the UDF.
    pub fn branch_count(&self) -> usize {
        fn stmts(body: &[Stmt]) -> usize {
            body.iter()
                .map(|s| match s {
                    Stmt::If { then_body, else_body, .. } => {
                        1 + stmts(then_body) + stmts(else_body)
                    }
                    Stmt::For { body, .. } | Stmt::While { body, .. } => stmts(body),
                    _ => 0,
                })
                .sum()
        }
        stmts(&self.body)
    }

    /// Number of loops in the UDF.
    pub fn loop_count(&self) -> usize {
        fn stmts(body: &[Stmt]) -> usize {
            body.iter()
                .map(|s| match s {
                    Stmt::For { body, .. } | Stmt::While { body, .. } => 1 + stmts(body),
                    Stmt::If { then_body, else_body, .. } => stmts(then_body) + stmts(else_body),
                    _ => 0,
                })
                .sum()
        }
        stmts(&self.body)
    }

    /// Parameters whose value the body can observe: a parameter counts as
    /// read iff its name appears in any expression anywhere in the body
    /// (assignment right-hand sides, branch/loop conditions, `range` counts,
    /// return values). Conservative with respect to shadowing — a read that
    /// is dominated by a local rebinding still marks the parameter as read,
    /// which over-approximates but never under-approximates the true read
    /// set, so dead-parameter pruning stays safe.
    pub fn param_read_set(&self) -> std::collections::BTreeSet<String> {
        fn walk(body: &[Stmt], names: &mut Vec<String>) {
            for s in body {
                match s {
                    Stmt::Assign { expr, .. } => expr.names(names),
                    Stmt::If { cond, then_body, else_body } => {
                        cond.names(names);
                        walk(then_body, names);
                        walk(else_body, names);
                    }
                    Stmt::For { count, body, .. } => {
                        count.names(names);
                        walk(body, names);
                    }
                    Stmt::While { cond, body } => {
                        cond.names(names);
                        walk(body, names);
                    }
                    Stmt::Return(e) => e.names(names),
                }
            }
        }
        let mut names = Vec::new();
        walk(&self.body, &mut names);
        let read: std::collections::BTreeSet<&String> = names.iter().collect();
        self.params.iter().filter(|p| read.contains(p)).cloned().collect()
    }

    /// Every library function mentioned anywhere in the UDF.
    pub fn lib_calls(&self) -> Vec<LibFn> {
        fn walk(body: &[Stmt], out: &mut Vec<LibFn>) {
            for s in body {
                match s {
                    Stmt::Assign { expr, .. } => expr.lib_calls(out),
                    Stmt::If { cond, then_body, else_body } => {
                        cond.lib_calls(out);
                        walk(then_body, out);
                        walk(else_body, out);
                    }
                    Stmt::For { count, body, .. } => {
                        count.lib_calls(out);
                        walk(body, out);
                    }
                    Stmt::While { cond, body } => {
                        cond.lib_calls(out);
                        walk(body, out);
                    }
                    Stmt::Return(e) => e.lib_calls(out),
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.body, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> UdfDef {
        // def f(x):
        //     if x < 20:
        //         z = x ** 2
        //     else:
        //         z = 0
        //     for i in range(10):
        //         z = z + math.sqrt(x)
        //     return z
        UdfDef {
            name: "f".into(),
            params: vec!["x".into()],
            body: vec![
                Stmt::If {
                    cond: Expr::cmp(CmpOp::Lt, Expr::name("x"), Expr::Int(20)),
                    then_body: vec![Stmt::Assign {
                        target: "z".into(),
                        expr: Expr::bin(BinOp::Pow, Expr::name("x"), Expr::Int(2)),
                    }],
                    else_body: vec![Stmt::Assign { target: "z".into(), expr: Expr::Int(0) }],
                },
                Stmt::For {
                    var: "i".into(),
                    count: Expr::Int(10),
                    body: vec![Stmt::Assign {
                        target: "z".into(),
                        expr: Expr::bin(
                            BinOp::Add,
                            Expr::name("z"),
                            Expr::call(LibFn::MathSqrt, vec![Expr::name("x")]),
                        ),
                    }],
                },
                Stmt::Return(Expr::name("z")),
            ],
        }
    }

    #[test]
    fn counting() {
        let udf = sample();
        assert_eq!(udf.branch_count(), 1);
        assert_eq!(udf.loop_count(), 1);
        assert!(udf.op_count() >= 5);
        assert_eq!(udf.lib_calls(), vec![LibFn::MathSqrt]);
    }

    #[test]
    fn names_collects_unique() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::name("x"),
            Expr::bin(BinOp::Mul, Expr::name("x"), Expr::name("y")),
        );
        let mut names = Vec::new();
        e.names(&mut names);
        assert_eq!(names, vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn cmp_op_transformations() {
        assert_eq!(CmpOp::Lt.flipped(), CmpOp::Gt);
        assert_eq!(CmpOp::Lt.negated(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.flipped(), CmpOp::Eq);
        assert_eq!(CmpOp::Ne.negated(), CmpOp::Eq);
        for op in CmpOp::ALL {
            assert_eq!(op.negated().negated(), op);
            assert_eq!(op.flipped().flipped(), op);
        }
    }

    #[test]
    fn op_indices_dense() {
        for (i, op) in BinOp::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
        }
        for (i, op) in CmpOp::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
        }
    }
}
