//! Indentation-aware lexer for the Python-subset UDF language.
//!
//! Produces a flat token stream with explicit `Newline` / `Indent` / `Dedent`
//! tokens, exactly like CPython's tokenizer, so the parser can treat blocks
//! structurally. Indentation must be spaces (generated code uses 4).

use graceful_common::{GracefulError, Result};

/// Tokens of the UDF language.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    // Keywords.
    Def,
    If,
    Elif,
    Else,
    For,
    While,
    In,
    Return,
    And,
    Or,
    Not,
    True,
    False,
    NoneKw,
    // Operators / punctuation.
    Plus,
    Minus,
    Star,
    DoubleStar,
    Slash,
    DoubleSlash,
    Percent,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    NotEq,
    Assign,
    LParen,
    RParen,
    Comma,
    Colon,
    Dot,
    // Layout.
    Newline,
    Indent,
    Dedent,
    Eof,
}

/// A token with its source line (1-based) for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    pub tok: Tok,
    pub line: usize,
}

fn keyword(ident: &str) -> Option<Tok> {
    Some(match ident {
        "def" => Tok::Def,
        "if" => Tok::If,
        "elif" => Tok::Elif,
        "else" => Tok::Else,
        "for" => Tok::For,
        "while" => Tok::While,
        "in" => Tok::In,
        "return" => Tok::Return,
        "and" => Tok::And,
        "or" => Tok::Or,
        "not" => Tok::Not,
        "True" => Tok::True,
        "False" => Tok::False,
        "None" => Tok::NoneKw,
        _ => return None,
    })
}

/// Tokenize UDF source code.
pub fn lex(source: &str) -> Result<Vec<SpannedTok>> {
    let mut out: Vec<SpannedTok> = Vec::new();
    let mut indents: Vec<usize> = vec![0];
    for (line_no, raw_line) in source.lines().enumerate() {
        let line_no = line_no + 1;
        // Strip comments (the first `#` outside any string literal).
        let line = match comment_start(raw_line) {
            Some(pos) => &raw_line[..pos],
            None => raw_line,
        };
        if line.trim().is_empty() {
            continue; // blank lines carry no layout information
        }
        let indent = line.len() - line.trim_start_matches(' ').len();
        if line.as_bytes().first() == Some(&b'\t') {
            return Err(GracefulError::Parse {
                line: line_no,
                message: "tabs are not supported; indent with spaces".into(),
            });
        }
        let current = *indents.last().expect("indent stack never empty");
        if indent > current {
            indents.push(indent);
            out.push(SpannedTok { tok: Tok::Indent, line: line_no });
        } else {
            while indent < *indents.last().expect("non-empty") {
                indents.pop();
                out.push(SpannedTok { tok: Tok::Dedent, line: line_no });
            }
            if indent != *indents.last().expect("non-empty") {
                return Err(GracefulError::Parse {
                    line: line_no,
                    message: "inconsistent indentation".into(),
                });
            }
        }
        lex_line(line.trim_start_matches(' '), line_no, &mut out)?;
        out.push(SpannedTok { tok: Tok::Newline, line: line_no });
    }
    while indents.len() > 1 {
        indents.pop();
        out.push(SpannedTok { tok: Tok::Dedent, line: usize::MAX });
    }
    out.push(SpannedTok { tok: Tok::Eof, line: usize::MAX });
    Ok(out)
}

/// Byte offset of the first `#` outside any string literal, if any.
fn comment_start(line: &str) -> Option<usize> {
    let mut in_str = false;
    let mut quote = ' ';
    for (i, c) in line.char_indices() {
        if in_str {
            if c == quote {
                in_str = false;
            }
        } else if c == '\'' || c == '"' {
            in_str = true;
            quote = c;
        } else if c == '#' {
            return Some(i);
        }
    }
    None
}

fn lex_line(line: &str, line_no: usize, out: &mut Vec<SpannedTok>) -> Result<()> {
    let bytes = line.as_bytes();
    let mut i = 0;
    let err = |msg: String| GracefulError::Parse { line: line_no, message: msg };
    let push = |out: &mut Vec<SpannedTok>, tok: Tok| out.push(SpannedTok { tok, line: line_no });
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' => i += 1,
            '(' => {
                push(out, Tok::LParen);
                i += 1;
            }
            ')' => {
                push(out, Tok::RParen);
                i += 1;
            }
            ',' => {
                push(out, Tok::Comma);
                i += 1;
            }
            ':' => {
                push(out, Tok::Colon);
                i += 1;
            }
            '.' if i + 1 < bytes.len() && !(bytes[i + 1] as char).is_ascii_digit() => {
                push(out, Tok::Dot);
                i += 1;
            }
            '+' => {
                push(out, Tok::Plus);
                i += 1;
            }
            '-' => {
                push(out, Tok::Minus);
                i += 1;
            }
            '*' => {
                if bytes.get(i + 1) == Some(&b'*') {
                    push(out, Tok::DoubleStar);
                    i += 2;
                } else {
                    push(out, Tok::Star);
                    i += 1;
                }
            }
            '/' => {
                if bytes.get(i + 1) == Some(&b'/') {
                    push(out, Tok::DoubleSlash);
                    i += 2;
                } else {
                    push(out, Tok::Slash);
                    i += 1;
                }
            }
            '%' => {
                push(out, Tok::Percent);
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(out, Tok::Le);
                    i += 2;
                } else {
                    push(out, Tok::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(out, Tok::Ge);
                    i += 2;
                } else {
                    push(out, Tok::Gt);
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(out, Tok::EqEq);
                    i += 2;
                } else {
                    push(out, Tok::Assign);
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(out, Tok::NotEq);
                    i += 2;
                } else {
                    return Err(err("unexpected '!'".into()));
                }
            }
            '\'' | '"' => {
                let quote = c;
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] as char != quote {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(err("unterminated string literal".into()));
                }
                push(out, Tok::Str(line[start..j].to_string()));
                i = j + 1;
            }
            c if c.is_ascii_digit() || (c == '.' && i + 1 < bytes.len()) => {
                let start = i;
                let mut saw_dot = false;
                let mut saw_exp = false;
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    if d.is_ascii_digit() {
                        i += 1;
                    } else if d == '.' && !saw_dot && !saw_exp {
                        saw_dot = true;
                        i += 1;
                    } else if (d == 'e' || d == 'E')
                        && !saw_exp
                        && i > start
                        && i + 1 < bytes.len()
                        && ((bytes[i + 1] as char).is_ascii_digit()
                            || bytes[i + 1] == b'-'
                            || bytes[i + 1] == b'+')
                    {
                        saw_exp = true;
                        i += 1;
                        if bytes[i] == b'-' || bytes[i] == b'+' {
                            i += 1;
                        }
                    } else {
                        break;
                    }
                }
                let text = &line[start..i];
                if saw_dot || saw_exp {
                    let v: f64 =
                        text.parse().map_err(|_| err(format!("bad float literal {text}")))?;
                    push(out, Tok::Float(v));
                } else {
                    let v: i64 =
                        text.parse().map_err(|_| err(format!("bad int literal {text}")))?;
                    push(out, Tok::Int(v));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let ident = &line[start..i];
                match keyword(ident) {
                    Some(kw) => push(out, kw),
                    None => push(out, Tok::Ident(ident.to_string())),
                }
            }
            other => return Err(err(format!("unexpected character {other:?}"))),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn simple_line() {
        assert_eq!(
            toks("x = 1 + 2.5"),
            vec![
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Int(1),
                Tok::Plus,
                Tok::Float(2.5),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn indentation_blocks() {
        let src = "if x < 1:\n    y = 2\nz = 3\n";
        let t = toks(src);
        assert!(t.contains(&Tok::Indent));
        assert!(t.contains(&Tok::Dedent));
        let indent_pos = t.iter().position(|x| *x == Tok::Indent).unwrap();
        let dedent_pos = t.iter().position(|x| *x == Tok::Dedent).unwrap();
        assert!(indent_pos < dedent_pos);
    }

    #[test]
    fn trailing_dedents_emitted() {
        let src = "if x < 1:\n    if y < 2:\n        z = 1\n";
        let t = toks(src);
        let dedents = t.iter().filter(|x| **x == Tok::Dedent).count();
        assert_eq!(dedents, 2);
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("a ** b // c != d"),
            vec![
                Tok::Ident("a".into()),
                Tok::DoubleStar,
                Tok::Ident("b".into()),
                Tok::DoubleSlash,
                Tok::Ident("c".into()),
                Tok::NotEq,
                Tok::Ident("d".into()),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn strings_and_comments() {
        let t = toks("s = 'a#b'  # trailing comment");
        assert_eq!(
            t,
            vec![
                Tok::Ident("s".into()),
                Tok::Assign,
                Tok::Str("a#b".into()),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn keywords_recognised() {
        let t = toks("def f(x):\n    return not True and None\n");
        assert!(t.contains(&Tok::Def));
        assert!(t.contains(&Tok::Return));
        assert!(t.contains(&Tok::Not));
        assert!(t.contains(&Tok::And));
        assert!(t.contains(&Tok::NoneKw));
    }

    #[test]
    fn errors_reported_with_line() {
        let err = lex("x = 1\ny = @").unwrap_err();
        match err {
            GracefulError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn inconsistent_indent_rejected() {
        let src = "if x < 1:\n    y = 2\n  z = 3\n";
        assert!(lex(src).is_err());
    }

    #[test]
    fn scientific_notation() {
        assert_eq!(toks("x = 1e-3")[2], Tok::Float(1e-3));
        assert_eq!(toks("x = 2.5e2")[2], Tok::Float(250.0));
    }
}
