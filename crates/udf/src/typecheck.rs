//! Static type inference over UDFs.
//!
//! The RET node of the UDF graph featurizes the *output data type* (Table I)
//! because DBMS↔UDF conversion costs differ by type. Rather than executing
//! the UDF to observe it, this module infers the return type with a small
//! abstract interpreter over the type lattice
//! `Int ⊑ Float`, `{Bool, Text}` incomparable, `Unknown` as top.
//!
//! The analysis is flow-sensitive for straight-line code, joins branches by
//! type unification, and iterates loop bodies to a (two-pass) fixpoint —
//! enough for the UDF language, which has no recursion.

use crate::ast::{BinOp, Expr, Stmt, UdfDef, UnOp};
use crate::libfns::{LibCategory, LibFn};
use graceful_storage::DataType;
use std::collections::HashMap;

/// Abstract value types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    Int,
    Float,
    Text,
    Bool,
    /// NULL-only or not yet assigned.
    None,
    Unknown,
}

impl Ty {
    fn from_data_type(dt: DataType) -> Ty {
        match dt {
            DataType::Int => Ty::Int,
            DataType::Float => Ty::Float,
            DataType::Text => Ty::Text,
            DataType::Bool => Ty::Bool,
        }
    }

    /// Best-effort conversion back to a storage type (Float for unknowns —
    /// the numeric accumulator case dominates generated UDFs).
    pub fn to_data_type(self) -> DataType {
        match self {
            Ty::Int => DataType::Int,
            Ty::Float | Ty::None | Ty::Unknown => DataType::Float,
            Ty::Text => DataType::Text,
            Ty::Bool => DataType::Bool,
        }
    }

    /// Least upper bound.
    fn unify(self, other: Ty) -> Ty {
        use Ty::*;
        match (self, other) {
            (a, b) if a == b => a,
            (None, t) | (t, None) => t,
            (Int, Float) | (Float, Int) => Float,
            (Bool, Int) | (Int, Bool) => Int,
            (Bool, Float) | (Float, Bool) => Float,
            _ => Unknown,
        }
    }

    fn is_numeric(self) -> bool {
        matches!(self, Ty::Int | Ty::Float | Ty::Bool)
    }
}

/// Infer the return type of a UDF given its argument types.
pub fn infer_return_type(udf: &UdfDef, arg_types: &[DataType]) -> DataType {
    let mut env: HashMap<String, Ty> = HashMap::new();
    for (i, p) in udf.params.iter().enumerate() {
        let ty = arg_types.get(i).map(|&d| Ty::from_data_type(d)).unwrap_or(Ty::Unknown);
        env.insert(p.clone(), ty);
    }
    let mut returns = Vec::new();
    walk_block(&udf.body, &mut env, &mut returns);
    let mut out = Ty::None;
    for t in returns {
        out = out.unify(t);
    }
    out.to_data_type()
}

fn walk_block(body: &[Stmt], env: &mut HashMap<String, Ty>, returns: &mut Vec<Ty>) {
    for stmt in body {
        match stmt {
            Stmt::Assign { target, expr } => {
                let t = type_of(expr, env);
                env.insert(target.clone(), t);
            }
            Stmt::Return(e) => returns.push(type_of(e, env)),
            Stmt::If { then_body, else_body, .. } => {
                let mut then_env = env.clone();
                let mut else_env = env.clone();
                walk_block(then_body, &mut then_env, returns);
                walk_block(else_body, &mut else_env, returns);
                // Join: unify per variable across both arms.
                let keys: Vec<String> = then_env.keys().chain(else_env.keys()).cloned().collect();
                for k in keys {
                    let a = *then_env.get(&k).unwrap_or(&Ty::None);
                    let b = *else_env.get(&k).unwrap_or(&Ty::None);
                    env.insert(k, a.unify(b));
                }
            }
            Stmt::For { var, body, .. } => {
                env.insert(var.clone(), Ty::Int);
                // Two passes reach the fixpoint on this lattice (height 2).
                walk_block(body, env, returns);
                walk_block(body, env, returns);
            }
            Stmt::While { body, .. } => {
                walk_block(body, env, returns);
                walk_block(body, env, returns);
            }
        }
    }
}

fn type_of(e: &Expr, env: &HashMap<String, Ty>) -> Ty {
    match e {
        Expr::Name(n) => *env.get(n).unwrap_or(&Ty::Unknown),
        Expr::Int(_) => Ty::Int,
        Expr::Float(_) => Ty::Float,
        Expr::Str(_) => Ty::Text,
        Expr::Bool(_) => Ty::Bool,
        Expr::NoneLit => Ty::None,
        Expr::Unary { op, operand } => match op {
            UnOp::Not => Ty::Bool,
            UnOp::Neg => type_of(operand, env),
        },
        Expr::Compare { .. } | Expr::BoolOp { .. } => Ty::Bool,
        Expr::Binary { op, left, right } => {
            let (l, r) = (type_of(left, env), type_of(right, env));
            match op {
                BinOp::Add if l == Ty::Text && r == Ty::Text => Ty::Text,
                BinOp::Mul if l == Ty::Text && r.is_numeric() => Ty::Text,
                BinOp::Div => Ty::Float,
                BinOp::FloorDiv | BinOp::Mod => {
                    if l == Ty::Int && r == Ty::Int {
                        Ty::Int
                    } else {
                        Ty::Float
                    }
                }
                BinOp::Pow => {
                    if l == Ty::Int && r == Ty::Int {
                        Ty::Int // small literal exponents stay integral
                    } else {
                        Ty::Float
                    }
                }
                _ => {
                    if l == Ty::Int && r == Ty::Int {
                        Ty::Int
                    } else if l.is_numeric() && r.is_numeric() {
                        Ty::Float
                    } else {
                        Ty::Unknown
                    }
                }
            }
        }
        Expr::Call { func, args } => lib_return_type(*func, args.first().map(|a| type_of(a, env))),
        Expr::Method { func, .. } => lib_return_type(*func, Some(Ty::Text)),
    }
}

fn lib_return_type(f: LibFn, first_arg: Option<Ty>) -> Ty {
    use LibFn::*;
    match f {
        MathFloor | MathCeil | BuiltinLen | BuiltinInt | StrFind | StrSplitCount => Ty::Int,
        BuiltinStr | StrUpper | StrLower | StrStrip | StrReplace => Ty::Text,
        StrStartswith | StrEndswith => Ty::Bool,
        BuiltinAbs => match first_arg {
            Some(Ty::Int) => Ty::Int,
            _ => Ty::Float,
        },
        _ => match f.category() {
            LibCategory::Math | LibCategory::Numpy => Ty::Float,
            _ => Ty::Float,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_udf;

    fn infer(src: &str, args: &[DataType]) -> DataType {
        infer_return_type(&parse_udf(src).unwrap(), args)
    }

    #[test]
    fn integer_arithmetic_stays_int() {
        assert_eq!(infer("def f(x):\n    return x + 2\n", &[DataType::Int]), DataType::Int);
        assert_eq!(infer("def f(x):\n    return x * 2 - 1\n", &[DataType::Int]), DataType::Int);
    }

    #[test]
    fn division_promotes_to_float() {
        assert_eq!(infer("def f(x):\n    return x / 2\n", &[DataType::Int]), DataType::Float);
    }

    #[test]
    fn math_calls_are_float() {
        assert_eq!(
            infer("def f(x):\n    return math.sqrt(x)\n", &[DataType::Int]),
            DataType::Float
        );
        assert_eq!(
            infer("def f(x):\n    return math.floor(x)\n", &[DataType::Float]),
            DataType::Int
        );
    }

    #[test]
    fn string_methods_are_text() {
        assert_eq!(infer("def f(s):\n    return s.upper()\n", &[DataType::Text]), DataType::Text);
        assert_eq!(infer("def f(s):\n    return len(s)\n", &[DataType::Text]), DataType::Int);
        assert_eq!(
            infer("def f(s):\n    return s.startswith('a')\n", &[DataType::Text]),
            DataType::Bool
        );
    }

    #[test]
    fn branches_unify() {
        // One branch Int, one Float -> Float.
        let src = "def f(x):\n    if x < 0:\n        return x\n    return x / 2\n";
        assert_eq!(infer(src, &[DataType::Int]), DataType::Float);
        // Both Int -> Int.
        let src2 = "def f(x):\n    if x < 0:\n        return 0\n    return x + 1\n";
        assert_eq!(infer(src2, &[DataType::Int]), DataType::Int);
    }

    #[test]
    fn loop_accumulation_reaches_fixpoint() {
        // z starts Int, becomes Float inside the loop via math.sqrt.
        let src = "def f(x):\n    z = 0\n    for i in range(10):\n        z = z + math.sqrt(x)\n    return z\n";
        assert_eq!(infer(src, &[DataType::Int]), DataType::Float);
    }

    #[test]
    fn implicit_none_defaults_to_float() {
        let src = "def f(x):\n    z = x + 1\n    return z\n";
        assert_eq!(infer(src, &[DataType::Int]), DataType::Int);
        // No return at all -> None path -> Float fallback.
        let src2 = "def f(x):\n    z = x + 1\n    return None\n";
        assert_eq!(infer(src2, &[DataType::Int]), DataType::Float);
    }

    #[test]
    fn generated_udfs_infer_without_panic() {
        use graceful_common::rng::Rng;
        use graceful_storage::datagen::{generate, schema};
        let db = generate(&schema("imdb"), 0.02, 7);
        let gen = crate::generator::UdfGenerator::default();
        let mut rng = Rng::seed(3);
        for _ in 0..40 {
            let u = gen.generate(&db, &mut rng).unwrap();
            let types: Vec<DataType> = u
                .input_columns
                .iter()
                .map(|c| db.table(&u.table).unwrap().column_type(c).unwrap())
                .collect();
            let dt = infer_return_type(&u.def, &types);
            // Generated UDFs return numbers or strings.
            assert!(matches!(dt, DataType::Int | DataType::Float | DataType::Text));
        }
    }
}
