//! Typed columnar (SIMD) execution of compiled UDF bytecode.
//!
//! The batch VM in [`crate::vm`] already amortizes compilation and register
//! allocation, but it still walks every instruction once *per row* over boxed
//! [`Value`]s. This module executes the vectorizable parts of a program once
//! per *batch* instead: every live register holds an unboxed column of
//! `i64`/`f64`/`bool` lanes plus a null bitmap, and each instruction is one
//! chunked, auto-vectorizable loop over those lanes.
//!
//! # Execution model
//!
//! A batch is processed in fixed-size chunks ([`SIMD_CHUNK`] rows). Within a
//! chunk, rows travel in **selection groups**: a group is a selection vector
//! (lane → row index), a register file of typed columns, and the program
//! counter all its rows share.
//!
//! * Straight-line numeric instructions ([`InstrClass::Vector`]) execute
//!   column-at-a-time over the whole selection.
//! * Conditional jumps ([`InstrClass::Split`]) evaluate the condition column
//!   and split the selection by truthiness — branch divergence becomes two
//!   smaller groups, each compacted to dense lanes.
//! * `for` loops with a statically proven constant trip count
//!   ([`InstrClass::Counted`], see [`crate::analysis::tripcount`]) stay on
//!   the fast path: every row runs the same iterations, so the group unrolls
//!   the loop in lockstep over the lane registers, replaying the scalar VM's
//!   per-iteration charges. The limit lanes are re-checked at run time.
//! * Rows that reach a non-vectorizable instruction ([`InstrClass::Bail`]:
//!   data-dependent loops, string builtins, a not-yet-defined variable read,
//!   or an operand whose runtime type the lane model cannot hold) **leave
//!   the fast path**: their group falls back to the per-row [`Vm::eval`],
//!   which recomputes those rows from scratch with the reference scalar
//!   semantics.
//!
//! # Bit-identical values *and* costs
//!
//! The lane kernels mirror the scalar kernels of [`crate::ops`] expression
//! for expression, so values match bit-for-bit. Costs match because, along a
//! straight-line path, every cost charge is value-independent (string costs —
//! the only data-dependent charges — never vectorize): all rows of a group
//! share one per-row [`CostCounter`] built by replaying the exact charge
//! sequence the scalar VM would perform. The final merge visits rows in row
//! order and merges each row's counter exactly like `Vm::eval_batch` does, so
//! the accumulated `f64` totals are bit-identical, batch after batch.

use crate::bytecode::{Instr, InstrClass, Operand, Program, SimdShape};
use crate::costs::CostCounter;
use crate::interp::EvalOutcome;
use crate::libfns::LibFn;
use crate::ops::{f64_to_i64, np_clip, np_sign, sanitize};
use crate::vm::Vm;
use graceful_common::{GracefulError, Result};
use graceful_storage::{Column, ColumnData, DataType, Value};

/// Rows per internal chunk: bounds lane-buffer memory and keeps the working
/// set cache-resident. The execution engine's `GRACEFUL_UDF_BATCH` default
/// matches it, so engine batches are exactly one chunk.
pub const SIMD_CHUNK: usize = 1024;

/// Divergence cap per chunk: once this many selection groups have been
/// spawned, further splits fall back to the scalar VM instead of dividing
/// again (a chain of `k` short-circuit conditions can otherwise spawn `2^k`
/// groups). Deterministic, and purely a performance valve — fallback rows
/// produce identical results.
const MAX_GROUPS: usize = 64;

// ---------------------------------------------------------------------------
// Typed input columns

/// An unboxed input column for one UDF parameter: dense typed data plus a
/// null bitmap, gathered straight from storage without materializing
/// [`Value`]s. Text columns have no typed representation — batches over them
/// take the scalar path.
#[derive(Debug, Clone, PartialEq)]
pub enum TypedCol {
    Int { data: Vec<i64>, nulls: Vec<bool> },
    Float { data: Vec<f64>, nulls: Vec<bool> },
    Bool { data: Vec<bool>, nulls: Vec<bool> },
}

impl TypedCol {
    /// An empty column of the lane type matching `dt`, with `cap` rows
    /// preallocated. `None` for Text — there is no unboxed lane type for it.
    pub fn for_type(dt: DataType, cap: usize) -> Option<TypedCol> {
        match dt {
            DataType::Int => Some(TypedCol::Int {
                data: Vec::with_capacity(cap),
                nulls: Vec::with_capacity(cap),
            }),
            DataType::Float => Some(TypedCol::Float {
                data: Vec::with_capacity(cap),
                nulls: Vec::with_capacity(cap),
            }),
            DataType::Bool => Some(TypedCol::Bool {
                data: Vec::with_capacity(cap),
                nulls: Vec::with_capacity(cap),
            }),
            DataType::Text => None,
        }
    }

    /// Refill from a storage column via its typed-slice accessors, gathering
    /// the given row ids. The column's type must match `self`'s lane type
    /// (callers fix the type once per operator via [`TypedCol::for_type`]).
    ///
    /// Encoded integer columns (dictionary, RLE) decode straight into the
    /// lanes here — a per-row dictionary lookup or run binary-search, never
    /// a boxed [`graceful_storage::Value`] — so the columnar fast path runs
    /// unchanged over compressed storage.
    pub fn fill_from_column(
        &mut self,
        col: &Column,
        rids: impl Iterator<Item = usize>,
    ) -> Result<()> {
        let mismatch =
            || GracefulError::Eval(format!("column {} does not match its typed buffer", col.name));
        match self {
            TypedCol::Int { data, nulls } => {
                data.clear();
                nulls.clear();
                match &col.data {
                    ColumnData::Int(src) => {
                        for rid in rids {
                            data.push(src[rid]);
                            nulls.push(col.nulls[rid]);
                        }
                    }
                    ColumnData::DictInt { codes, dict } => {
                        for rid in rids {
                            data.push(dict[codes[rid] as usize]);
                            nulls.push(col.nulls[rid]);
                        }
                    }
                    ColumnData::RleInt { .. } => {
                        for rid in rids {
                            data.push(col.data.int_at(rid).expect("rle is int"));
                            nulls.push(col.nulls[rid]);
                        }
                    }
                    _ => return Err(mismatch()),
                }
            }
            TypedCol::Float { data, nulls } => {
                let src = col.float_data().ok_or_else(mismatch)?;
                data.clear();
                nulls.clear();
                for rid in rids {
                    data.push(src[rid]);
                    nulls.push(col.nulls[rid]);
                }
            }
            TypedCol::Bool { data, nulls } => {
                let src = col.bool_data().ok_or_else(mismatch)?;
                data.clear();
                nulls.clear();
                for rid in rids {
                    data.push(src[rid]);
                    nulls.push(col.nulls[rid]);
                }
            }
        }
        Ok(())
    }

    /// Reset to `n` rows of the lane type's zero value with a clean (all
    /// non-null) mask. Used to gather a parameter the UDF provably never
    /// reads: the values are placeholders, and keeping the null mask clean
    /// guarantees the substitution cannot flip a fast-path/bail decision.
    pub fn fill_zero(&mut self, n: usize) {
        match self {
            TypedCol::Int { data, nulls } => {
                data.clear();
                data.resize(n, 0);
                nulls.clear();
                nulls.resize(n, false);
            }
            TypedCol::Float { data, nulls } => {
                data.clear();
                data.resize(n, 0.0);
                nulls.clear();
                nulls.resize(n, false);
            }
            TypedCol::Bool { data, nulls } => {
                data.clear();
                data.resize(n, false);
                nulls.clear();
                nulls.resize(n, false);
            }
        }
    }

    /// Convert a uniformly-typed `Value` column (bench/test convenience).
    /// `None` when the column mixes non-null types or contains Text.
    pub fn from_values(vals: &[Value]) -> Option<TypedCol> {
        let ty = vals.iter().find_map(Value::data_type).unwrap_or(DataType::Int);
        let mut out = TypedCol::for_type(ty, vals.len())?;
        for v in vals {
            let ok = match (&mut out, v) {
                (TypedCol::Int { data, nulls }, Value::Int(i)) => {
                    data.push(*i);
                    nulls.push(false);
                    true
                }
                (TypedCol::Int { data, nulls }, Value::Null) => {
                    data.push(0);
                    nulls.push(true);
                    true
                }
                (TypedCol::Float { data, nulls }, Value::Float(f)) => {
                    data.push(*f);
                    nulls.push(false);
                    true
                }
                (TypedCol::Float { data, nulls }, Value::Null) => {
                    data.push(0.0);
                    nulls.push(true);
                    true
                }
                (TypedCol::Bool { data, nulls }, Value::Bool(b)) => {
                    data.push(*b);
                    nulls.push(false);
                    true
                }
                (TypedCol::Bool { data, nulls }, Value::Null) => {
                    data.push(false);
                    nulls.push(true);
                    true
                }
                _ => false,
            };
            if !ok {
                return None;
            }
        }
        Some(out)
    }

    pub fn len(&self) -> usize {
        match self {
            TypedCol::Int { data, .. } => data.len(),
            TypedCol::Float { data, .. } => data.len(),
            TypedCol::Bool { data, .. } => data.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Boxed value at `row` (for the scalar fallback's argument gather).
    pub fn value(&self, row: usize) -> Value {
        match self {
            TypedCol::Int { data, nulls } => {
                if nulls[row] {
                    Value::Null
                } else {
                    Value::Int(data[row])
                }
            }
            TypedCol::Float { data, nulls } => {
                if nulls[row] {
                    Value::Null
                } else {
                    Value::Float(data[row])
                }
            }
            TypedCol::Bool { data, nulls } => {
                if nulls[row] {
                    Value::Null
                } else {
                    Value::Bool(data[row])
                }
            }
        }
    }

    /// Lane view of rows `range`, as the executor's internal column type.
    fn lane_col(&self, range: std::ops::Range<usize>) -> LaneCol {
        match self {
            TypedCol::Int { data, nulls } => LaneCol {
                lanes: Lanes::Int(data[range.clone()].to_vec()),
                nulls: nulls[range].to_vec(),
            },
            TypedCol::Float { data, nulls } => LaneCol {
                lanes: Lanes::Float(data[range.clone()].to_vec()),
                nulls: nulls[range].to_vec(),
            },
            TypedCol::Bool { data, nulls } => LaneCol {
                lanes: Lanes::Bool(data[range.clone()].to_vec()),
                nulls: nulls[range].to_vec(),
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Lane columns (internal register representation)

/// Typed lanes of one virtual register across a selection group.
#[derive(Debug, Clone)]
enum Lanes {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Bool(Vec<bool>),
}

/// A register column: lanes plus a null bitmap (one bool per lane, the same
/// representation storage uses for its null bitmaps).
#[derive(Debug, Clone)]
struct LaneCol {
    lanes: Lanes,
    nulls: Vec<bool>,
}

impl LaneCol {
    /// The SQL-NULL column: lane values are never read through the set mask.
    fn all_null(n: usize) -> LaneCol {
        LaneCol { lanes: Lanes::Float(vec![0.0; n]), nulls: vec![true; n] }
    }

    fn broadcast(v: &Value, n: usize) -> Option<LaneCol> {
        Some(match v {
            Value::Int(i) => LaneCol { lanes: Lanes::Int(vec![*i; n]), nulls: vec![false; n] },
            Value::Float(f) => LaneCol { lanes: Lanes::Float(vec![*f; n]), nulls: vec![false; n] },
            Value::Bool(b) => LaneCol { lanes: Lanes::Bool(vec![*b; n]), nulls: vec![false; n] },
            Value::Null => LaneCol::all_null(n),
            Value::Text(_) => return None,
        })
    }

    /// Widen to `f64` lanes following `Value::as_f64` (ints widen, bools map
    /// to 0/1). Null lanes keep whatever value sits there — masked.
    fn to_f64(&self) -> Vec<f64> {
        match &self.lanes {
            Lanes::Float(v) => v.clone(),
            Lanes::Int(v) => v.iter().map(|&x| x as f64).collect(),
            Lanes::Bool(v) => v.iter().map(|&b| b as u8 as f64).collect(),
        }
    }

    /// Truthiness per lane, following `Value::truthy` (NULL is falsy).
    fn truthy(&self) -> Vec<bool> {
        let mut out = match &self.lanes {
            Lanes::Int(v) => v.iter().map(|&x| x != 0).collect::<Vec<bool>>(),
            Lanes::Float(v) => v.iter().map(|&x| x != 0.0).collect(),
            Lanes::Bool(v) => v.clone(),
        };
        for (o, &null) in out.iter_mut().zip(&self.nulls) {
            *o = *o && !null;
        }
        out
    }

    /// Keep only the lanes listed in `keep` (selection compaction).
    fn filter(&self, keep: &[u32]) -> LaneCol {
        let lanes = match &self.lanes {
            Lanes::Int(v) => Lanes::Int(keep.iter().map(|&i| v[i as usize]).collect()),
            Lanes::Float(v) => Lanes::Float(keep.iter().map(|&i| v[i as usize]).collect()),
            Lanes::Bool(v) => Lanes::Bool(keep.iter().map(|&i| v[i as usize]).collect()),
        };
        LaneCol { lanes, nulls: keep.iter().map(|&i| self.nulls[i as usize]).collect() }
    }

    /// Boxed value of lane `i`.
    fn value(&self, i: usize) -> Value {
        if self.nulls[i] {
            return Value::Null;
        }
        match &self.lanes {
            Lanes::Int(v) => Value::Int(v[i]),
            Lanes::Float(v) => Value::Float(v[i]),
            Lanes::Bool(v) => Value::Bool(v[i]),
        }
    }
}

// ---------------------------------------------------------------------------
// Selection groups

/// Rows sharing one control-flow history: a selection vector, the typed
/// register file, and the per-row cost replayed along the shared path.
struct Group {
    pc: usize,
    /// Selection vector: lane `i` is chunk row `sel[i]`.
    sel: Vec<u32>,
    regs: Vec<Option<LaneCol>>,
    defined: Vec<bool>,
    /// The exact per-row `CostCounter` every row of this group has accrued.
    cost: CostCounter,
}

impl Group {
    fn filtered(&self, pc: usize, keep: &[u32]) -> Group {
        Group {
            pc,
            sel: keep.iter().map(|&i| self.sel[i as usize]).collect(),
            regs: self.regs.iter().map(|r| r.as_ref().map(|c| c.filter(keep))).collect(),
            defined: self.defined.clone(),
            cost: self.cost.clone(),
        }
    }
}

/// Outcome of one chunk row.
enum RowResult {
    /// Completed on the fast path; cost lives in the group's shared counter.
    Columnar { value: Value, group: u32 },
    /// Fell back to the scalar VM.
    Scalar(EvalOutcome),
    /// Scalar fallback failed; surfaced in row order like `Vm::eval_batch`.
    Failed(GracefulError),
}

// ---------------------------------------------------------------------------
// Public entry points

/// Fast-path effectiveness counters for one (or more, when accumulated)
/// typed-batch evaluations. Observability only: the engine never reads these
/// to make a decision, so they cannot affect results. The per-row bail rate
/// (`bail_rows / rows`) is the signal the SIMD fast-path widening work
/// tracks: it is exactly the fraction of rows the lane model could not keep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimdBatchStats {
    /// Rows evaluated in total.
    pub rows: u64,
    /// Rows completed on the columnar fast path.
    pub fast_rows: u64,
    /// Rows that fell back to the scalar VM (bail opcodes, untyped lanes,
    /// group-budget exhaustion, undefined reads).
    pub bail_rows: u64,
    /// True control-flow divergences that split a selection group in two.
    pub group_splits: u64,
}

impl SimdBatchStats {
    /// Accumulate another batch's counters into this one.
    pub fn merge(&mut self, other: &SimdBatchStats) {
        self.rows += other.rows;
        self.fast_rows += other.fast_rows;
        self.bail_rows += other.bail_rows;
        self.group_splits += other.group_splits;
    }
}

/// Evaluate a batch with the columnar fast path, falling back row-by-row to
/// the scalar VM wherever the lane model cannot follow. Appends one value per
/// row to `out` and merges per-row costs into `cost` **in row order** —
/// values, errors and `CostCounter` totals are bit-identical to
/// [`Vm::eval_batch`] (and therefore to a tree-walker row loop).
pub fn eval_batch_typed(
    vm: &mut Vm,
    prog: &Program,
    shape: &SimdShape,
    cols: &[TypedCol],
    out: &mut Vec<Value>,
    cost: &mut CostCounter,
) -> Result<()> {
    eval_batch_typed_with_stats(vm, prog, shape, cols, out, cost, &mut SimdBatchStats::default())
}

/// [`eval_batch_typed`] that additionally accumulates fast-path
/// effectiveness counters into `stats`. Values, errors and costs are
/// unaffected by the accounting (it only observes which `RowResult` variant
/// each row produced), so this is what the execution engine's instrumented
/// UDF path calls.
pub fn eval_batch_typed_with_stats(
    vm: &mut Vm,
    prog: &Program,
    shape: &SimdShape,
    cols: &[TypedCol],
    out: &mut Vec<Value>,
    cost: &mut CostCounter,
    stats: &mut SimdBatchStats,
) -> Result<()> {
    if cols.len() != prog.n_params() {
        return Err(GracefulError::Eval(format!(
            "{} expects {} args, got {} columns",
            prog.name,
            prog.n_params(),
            cols.len()
        )));
    }
    // A shape computed for a different (or since-recompiled) program would
    // misclassify instructions — the executor indexes `shape.class[pc]`
    // unchecked past this point.
    if shape.class.len() != prog.instrs.len() {
        return Err(GracefulError::Verify(format!(
            "{}: SIMD shape covers {} instructions but the program has {}",
            prog.name,
            shape.class.len(),
            prog.instrs.len()
        )));
    }
    let rows = cols.first().map_or(0, TypedCol::len);
    if let Some(bad) = cols.iter().find(|c| c.len() != rows) {
        return Err(GracefulError::Eval(format!(
            "{}: ragged batch: column of {} rows, expected {rows}",
            prog.name,
            bad.len()
        )));
    }
    out.reserve(rows);
    let mut start = 0;
    while start < rows {
        let end = (start + SIMD_CHUNK).min(rows);
        let (results, group_costs, groups_spawned) = run_chunk(vm, prog, shape, cols, start..end)?;
        // Every divergence spawned two child groups on top of the root.
        stats.group_splits += ((groups_spawned - 1) / 2) as u64;
        // Ordered merge: one value push + one cost merge per row, exactly the
        // per-row cadence of `Vm::eval_batch`; the first failing row wins.
        for r in results {
            stats.rows += 1;
            match r {
                RowResult::Columnar { value, group } => {
                    stats.fast_rows += 1;
                    out.push(value);
                    cost.merge(&group_costs[group as usize]);
                }
                RowResult::Scalar(o) => {
                    stats.bail_rows += 1;
                    out.push(o.value);
                    cost.merge(&o.cost);
                }
                RowResult::Failed(e) => return Err(e),
            }
        }
        start = end;
    }
    Ok(())
}

/// Convenience wrapper over boxed `Value` columns (benches, tests): converts
/// each column to its typed form when possible, otherwise delegates the whole
/// batch to [`Vm::eval_batch`]. Results are identical either way.
pub fn eval_batch_values(
    vm: &mut Vm,
    prog: &Program,
    shape: &SimdShape,
    cols: &[&[Value]],
    out: &mut Vec<Value>,
    cost: &mut CostCounter,
) -> Result<()> {
    if shape.has_fast_path {
        let typed: Option<Vec<TypedCol>> = cols.iter().map(|c| TypedCol::from_values(c)).collect();
        if let Some(typed) = typed {
            if cols.len() == prog.n_params() {
                return eval_batch_typed(vm, prog, shape, &typed, out, cost);
            }
        }
    }
    vm.eval_batch(prog, cols, out, cost)
}

// ---------------------------------------------------------------------------
// Chunk execution

/// Why a group leaves the fast path (all variants route to the scalar VM).
struct Bail;

type Kernel<T> = std::result::Result<T, Bail>;

fn run_chunk(
    vm: &mut Vm,
    prog: &Program,
    shape: &SimdShape,
    cols: &[TypedCol],
    range: std::ops::Range<usize>,
) -> Result<(Vec<RowResult>, Vec<CostCounter>, usize)> {
    let n = range.len();
    let w = vm.weights().clone();
    let mut results: Vec<Option<RowResult>> = (0..n).map(|_| None).collect();
    let mut group_costs: Vec<CostCounter> = Vec::new();

    // Root group: all chunk rows, parameters gathered into lane columns.
    let n_slots = prog.slots.len();
    let mut regs: Vec<Option<LaneCol>> = (0..prog.n_regs as usize).map(|_| None).collect();
    for (slot, col) in cols.iter().enumerate() {
        regs[slot] = Some(col.lane_col(range.clone()));
    }
    let mut defined = vec![false; n_slots];
    for d in defined.iter_mut().take(prog.n_params()) {
        *d = true;
    }
    let mut root_cost = CostCounter::new();
    // Typed columns carry no text, so the invocation conversion charge is the
    // exact expression `Vm::eval_batch` computes with zero text chars.
    root_cost.add_invocation(&w, cols.len(), 0);
    let mut worklist =
        vec![Group { pc: 0, sel: (0..n as u32).collect(), regs, defined, cost: root_cost }];
    let mut groups_spawned = 1usize;

    while let Some(mut g) = worklist.pop() {
        if g.sel.is_empty() {
            continue;
        }
        loop {
            let pc = g.pc;
            if shape.class[pc] == InstrClass::Bail {
                fallback_group(vm, prog, cols, range.start, &g, &mut results);
                break;
            }
            match &prog.instrs[pc] {
                Instr::Copy { dst, src } => {
                    let col = match resolve_owned(&g, &prog.consts, *src) {
                        Ok(c) => c,
                        Err(Bail) => {
                            fallback_group(vm, prog, cols, range.start, &g, &mut results);
                            break;
                        }
                    };
                    g.regs[*dst as usize] = Some(col);
                }
                Instr::Unary { op, dst, src } => {
                    g.cost.add_arith(&w, false);
                    let out = match resolve(&g, &prog.consts, *src)
                        .and_then(|s| unary_kernel(*op, s, g.sel.len()))
                    {
                        Ok(c) => c,
                        Err(Bail) => {
                            fallback_group(vm, prog, cols, range.start, &g, &mut results);
                            break;
                        }
                    };
                    g.regs[*dst as usize] = Some(out);
                }
                Instr::Binary { op, dst, l, r } => {
                    let slow = matches!(
                        op,
                        crate::ast::BinOp::Pow
                            | crate::ast::BinOp::FloorDiv
                            | crate::ast::BinOp::Mod
                    );
                    g.cost.add_arith(&w, slow);
                    let out = match binary_dispatch(&g, &prog.consts, *op, *l, *r) {
                        Ok(c) => c,
                        Err(Bail) => {
                            fallback_group(vm, prog, cols, range.start, &g, &mut results);
                            break;
                        }
                    };
                    g.regs[*dst as usize] = Some(out);
                }
                Instr::Compare { op, dst, l, r } => {
                    g.cost.add_compare(&w);
                    let out = match compare_dispatch(&g, &prog.consts, *op, *l, *r) {
                        Ok(c) => c,
                        Err(Bail) => {
                            fallback_group(vm, prog, cols, range.start, &g, &mut results);
                            break;
                        }
                    };
                    g.regs[*dst as usize] = Some(out);
                }
                Instr::CastBool { dst, src } => {
                    let out = match resolve(&g, &prog.consts, *src) {
                        Ok(Src::Col(c)) => LaneCol {
                            lanes: Lanes::Bool(c.truthy()),
                            nulls: vec![false; g.sel.len()],
                        },
                        Ok(Src::Const(v)) => LaneCol {
                            lanes: Lanes::Bool(vec![v.truthy(); g.sel.len()]),
                            nulls: vec![false; g.sel.len()],
                        },
                        Err(Bail) => {
                            fallback_group(vm, prog, cols, range.start, &g, &mut results);
                            break;
                        }
                    };
                    g.regs[*dst as usize] = Some(out);
                }
                Instr::Call { func, dst, base, n_args, has_recv } => {
                    g.cost.add_lib_call(*func);
                    if *has_recv {
                        // String methods only; their shape class is Bail, so
                        // a receiver here means an unexpected combination —
                        // take the safe road.
                        fallback_group(vm, prog, cols, range.start, &g, &mut results);
                        break;
                    }
                    let out = match call_kernel(&g, *func, *base as usize, *n_args as usize) {
                        Ok(c) => c,
                        Err(Bail) => {
                            fallback_group(vm, prog, cols, range.start, &g, &mut results);
                            break;
                        }
                    };
                    g.regs[*dst as usize] = Some(out);
                }
                Instr::Jump { target } => {
                    g.pc = *target as usize;
                    continue;
                }
                Instr::JumpIfFalse { cond, target } | Instr::JumpIfTrue { cond, target } => {
                    let on_true_stays = matches!(&prog.instrs[pc], Instr::JumpIfFalse { .. });
                    let truthy = match resolve(&g, &prog.consts, *cond) {
                        Ok(Src::Col(c)) => c.truthy(),
                        Ok(Src::Const(v)) => {
                            // Uniform condition: the whole group follows one
                            // edge, no divergence.
                            if v.truthy() == on_true_stays {
                                g.pc = pc + 1;
                            } else {
                                g.pc = *target as usize;
                            }
                            continue;
                        }
                        Err(Bail) => {
                            fallback_group(vm, prog, cols, range.start, &g, &mut results);
                            break;
                        }
                    };
                    let mut stay: Vec<u32> = Vec::new();
                    let mut jump: Vec<u32> = Vec::new();
                    for (i, &t) in truthy.iter().enumerate() {
                        if t == on_true_stays {
                            stay.push(i as u32);
                        } else {
                            jump.push(i as u32);
                        }
                    }
                    if jump.is_empty() {
                        g.pc = pc + 1;
                        continue;
                    }
                    if stay.is_empty() {
                        g.pc = *target as usize;
                        continue;
                    }
                    // True divergence: compact each side into its own group.
                    if groups_spawned + 2 > MAX_GROUPS {
                        fallback_group(vm, prog, cols, range.start, &g, &mut results);
                        break;
                    }
                    groups_spawned += 2;
                    worklist.push(g.filtered(pc + 1, &stay));
                    worklist.push(g.filtered(*target as usize, &jump));
                    break;
                }
                Instr::Cost(kind) => match kind {
                    crate::bytecode::CostKind::Stmt => g.cost.add_stmt(&w),
                    crate::bytecode::CostKind::Assign => g.cost.add_assign(&w),
                    crate::bytecode::CostKind::Branch => g.cost.add_branch(&w),
                    crate::bytecode::CostKind::Compare => g.cost.add_compare(&w),
                },
                Instr::CheckDef { slot } => {
                    if !g.defined[*slot as usize] {
                        // Every row of this group reads an undefined variable;
                        // the scalar VM reports the exact per-row error.
                        fallback_group(vm, prog, cols, range.start, &g, &mut results);
                        break;
                    }
                }
                Instr::MarkDef { slot } => {
                    g.defined[*slot as usize] = true;
                }
                Instr::Return { src } => {
                    g.cost.add_return(&w);
                    let gid = group_costs.len() as u32;
                    group_costs.push(g.cost.clone());
                    match resolve(&g, &prog.consts, *src) {
                        Ok(Src::Col(c)) => {
                            for (i, &row) in g.sel.iter().enumerate() {
                                results[row as usize] =
                                    Some(RowResult::Columnar { value: c.value(i), group: gid });
                            }
                        }
                        Ok(Src::Const(v)) => {
                            for &row in &g.sel {
                                results[row as usize] =
                                    Some(RowResult::Columnar { value: v.clone(), group: gid });
                            }
                        }
                        Err(Bail) => {
                            group_costs.pop();
                            fallback_group(vm, prog, cols, range.start, &g, &mut results);
                        }
                    }
                    break;
                }
                Instr::ReturnNull => {
                    g.cost.add_return(&w);
                    let gid = group_costs.len() as u32;
                    group_costs.push(g.cost.clone());
                    for &row in &g.sel {
                        results[row as usize] =
                            Some(RowResult::Columnar { value: Value::Null, group: gid });
                    }
                    break;
                }
                // Counted loops (`InstrClass::Counted`): the trip count was
                // proven constant, so the group unrolls the loop in lockstep —
                // every lane runs the same iterations, replaying the exact
                // per-iteration charges of `Vm::run`. The limit is re-checked
                // at run time (uniform non-null Int across the lanes); any
                // surprise degrades to the scalar fallback, never to a wrong
                // answer.
                Instr::ForInit { counter, limit, src } => {
                    let n_lanes = g.sel.len();
                    let trips = match resolve(&g, &prog.consts, *src) {
                        Ok(Src::Const(Value::Int(n))) => Some((*n).max(0)),
                        Ok(Src::Col(c)) => uniform_int(c).map(|n| n.max(0)),
                        _ => None,
                    };
                    let Some(n) = trips else {
                        fallback_group(vm, prog, cols, range.start, &g, &mut results);
                        break;
                    };
                    g.regs[*limit as usize] = Some(broadcast_int(n, n_lanes));
                    g.regs[*counter as usize] = Some(broadcast_int(0, n_lanes));
                }
                Instr::ForNext { counter, limit, var_slot, exit } => {
                    let n_lanes = g.sel.len();
                    let c = g.regs[*counter as usize].as_ref().and_then(uniform_int);
                    let n = g.regs[*limit as usize].as_ref().and_then(uniform_int);
                    let (Some(c), Some(n)) = (c, n) else {
                        fallback_group(vm, prog, cols, range.start, &g, &mut results);
                        break;
                    };
                    if c < n {
                        // Same charge point as the scalar VM: one loop_iter
                        // per entered iteration, before the body.
                        g.cost.add_loop_iter(&w);
                        g.regs[*var_slot as usize] = Some(broadcast_int(c, n_lanes));
                        g.defined[*var_slot as usize] = true;
                        g.regs[*counter as usize] = Some(broadcast_int(c + 1, n_lanes));
                    } else {
                        g.pc = *exit as usize;
                        continue;
                    }
                }
                // While loops are always Bail-class and intercepted before
                // this match; reaching here means a corrupt shape — take the
                // safe road.
                Instr::WhileInit { .. } | Instr::WhileIter { .. } => {
                    fallback_group(vm, prog, cols, range.start, &g, &mut results);
                    break;
                }
            }
            g.pc = pc + 1;
        }
    }
    // Every row must have resolved (columnar return, scalar fallback, or a
    // recorded error). A gap is a bookkeeping bug in this module — surface
    // it as a typed error rather than a release-mode panic mid-query.
    let mut resolved = Vec::with_capacity(results.len());
    for (i, r) in results.into_iter().enumerate() {
        match r {
            Some(r) => resolved.push(r),
            None => {
                return Err(GracefulError::Verify(format!(
                    "{}: chunk row {i} never resolved to a result",
                    prog.name
                )))
            }
        }
    }
    Ok((resolved, group_costs, groups_spawned))
}

/// Re-run every row of `g` on the scalar VM (the authentic per-row
/// semantics, including errors), recording per-row outcomes.
fn fallback_group(
    vm: &mut Vm,
    prog: &Program,
    cols: &[TypedCol],
    chunk_start: usize,
    g: &Group,
    results: &mut [Option<RowResult>],
) {
    let mut args: Vec<Value> = Vec::with_capacity(cols.len());
    for &row in &g.sel {
        args.clear();
        args.extend(cols.iter().map(|c| c.value(chunk_start + row as usize)));
        results[row as usize] = Some(match vm.eval(prog, &args) {
            Ok(o) => RowResult::Scalar(o),
            Err(e) => RowResult::Failed(e),
        });
    }
}

/// One `Int` value broadcast across `n` non-null lanes (loop counters and
/// limits of counted loops).
fn broadcast_int(v: i64, n: usize) -> LaneCol {
    LaneCol { lanes: Lanes::Int(vec![v; n]), nulls: vec![false; n] }
}

/// The single `Int` every lane of `c` holds, if the column is uniform,
/// non-null and int-typed — the run-time guard of counted-loop execution.
fn uniform_int(c: &LaneCol) -> Option<i64> {
    if c.nulls.iter().any(|&b| b) {
        return None;
    }
    match &c.lanes {
        Lanes::Int(v) => {
            let first = *v.first()?;
            v.iter().all(|&x| x == first).then_some(first)
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Operand resolution

enum Src<'a> {
    Col(&'a LaneCol),
    Const(&'a Value),
}

fn resolve<'a>(g: &'a Group, consts: &'a [Value], op: Operand) -> Kernel<Src<'a>> {
    if op.is_const() {
        Ok(Src::Const(&consts[op.index()]))
    } else {
        match &g.regs[op.index()] {
            Some(c) => Ok(Src::Col(c)),
            None => Err(Bail),
        }
    }
}

fn resolve_owned(g: &Group, consts: &[Value], op: Operand) -> Kernel<LaneCol> {
    match resolve(g, consts, op)? {
        Src::Col(c) => Ok(c.clone()),
        Src::Const(v) => LaneCol::broadcast(v, g.sel.len()).ok_or(Bail),
    }
}

/// Materialize a source as a lane column (broadcasting constants).
fn materialize<'a>(s: Src<'a>, n: usize) -> Kernel<std::borrow::Cow<'a, LaneCol>> {
    match s {
        Src::Col(c) => Ok(std::borrow::Cow::Borrowed(c)),
        Src::Const(v) => Ok(std::borrow::Cow::Owned(LaneCol::broadcast(v, n).ok_or(Bail)?)),
    }
}

// ---------------------------------------------------------------------------
// Lane kernels (mirroring crate::ops expression for expression)

fn unary_kernel(op: crate::ast::UnOp, src: Src<'_>, n: usize) -> Kernel<LaneCol> {
    let col = materialize(src, n)?;
    Ok(match op {
        crate::ast::UnOp::Neg => match &col.lanes {
            Lanes::Int(v) => LaneCol {
                lanes: Lanes::Int(v.iter().map(|x| x.wrapping_neg()).collect()),
                nulls: col.nulls.clone(),
            },
            Lanes::Float(v) => LaneCol {
                lanes: Lanes::Float(v.iter().map(|x| -x).collect()),
                nulls: col.nulls.clone(),
            },
            Lanes::Bool(_) => LaneCol::all_null(n),
        },
        crate::ast::UnOp::Not => {
            let t = col.truthy();
            LaneCol { lanes: Lanes::Bool(t.iter().map(|&b| !b).collect()), nulls: vec![false; n] }
        }
    })
}

fn binary_dispatch(
    g: &Group,
    consts: &[Value],
    op: crate::ast::BinOp,
    l: Operand,
    r: Operand,
) -> Kernel<LaneCol> {
    use crate::ast::BinOp;
    let n = g.sel.len();
    let ls = resolve(g, consts, l)?;
    let rs = resolve(g, consts, r)?;
    // `Int ** Int` picks its result type from the exponent's value; only a
    // constant exponent keeps the lane type static, so an int base with a
    // dynamic int exponent bails (float bases never hit the int fast path).
    let int_pow_exponent = if op == BinOp::Pow {
        let l_is_int = matches!(&ls, Src::Col(c) if matches!(c.lanes, Lanes::Int(_)))
            || matches!(&ls, Src::Const(Value::Int(_)));
        match &rs {
            Src::Const(Value::Int(k)) => Some(*k),
            Src::Col(c) if l_is_int && matches!(c.lanes, Lanes::Int(_)) => return Err(Bail),
            _ => None,
        }
    } else {
        None
    };
    let lc = materialize(ls, n)?;
    let rc = materialize(rs, n)?;
    let mut nulls: Vec<bool> = lc.nulls.iter().zip(&rc.nulls).map(|(&a, &b)| a | b).collect();
    if let (Lanes::Int(a), Lanes::Int(b)) = (&lc.lanes, &rc.lanes) {
        // Integer fast path of `ops::apply_binary`: int-typed data stays int.
        let lanes = match op {
            BinOp::Add => Lanes::Int(zip_i64(a, b, |x, y| x.wrapping_add(y))),
            BinOp::Sub => Lanes::Int(zip_i64(a, b, |x, y| x.wrapping_sub(y))),
            BinOp::Mul => Lanes::Int(zip_i64(a, b, |x, y| x.wrapping_mul(y))),
            BinOp::Div => {
                for (nl, &y) in nulls.iter_mut().zip(b) {
                    *nl |= y == 0;
                }
                // Zero divisors are masked above; write 0.0 instead of the
                // ±inf/NaN the division would leave, so masked-lane garbage
                // never reaches a downstream kernel.
                Lanes::Float(zip_i64_f(a, b, |x, y| if y == 0 { 0.0 } else { x as f64 / y as f64 }))
            }
            BinOp::Mod => {
                for (nl, &y) in nulls.iter_mut().zip(b) {
                    *nl |= y == 0;
                }
                Lanes::Int(zip_i64(a, b, |x, y| x.checked_rem_euclid(y).unwrap_or(0)))
            }
            BinOp::FloorDiv => {
                for (nl, &y) in nulls.iter_mut().zip(b) {
                    *nl |= y == 0;
                }
                Lanes::Int(zip_i64(a, b, |x, y| x.checked_div_euclid(y).unwrap_or(i64::MAX)))
            }
            BinOp::Pow => {
                // The dispatch above bailed every int-base/dynamic-int-
                // exponent combination; a `None` here would mean that guard
                // rotted, so refuse the selection instead of guessing.
                let Some(k) = int_pow_exponent else { return Err(Bail) };
                if (0..=16).contains(&k) {
                    Lanes::Int(a.iter().map(|&x| x.saturating_pow(k as u32)).collect())
                } else {
                    Lanes::Float(a.iter().map(|&x| (x as f64).powf(k as f64)).collect())
                }
            }
        };
        return Ok(LaneCol { lanes, nulls });
    }
    // Float path: widen both sides, sanitize like the scalar kernel.
    let a = lc.to_f64();
    let b = rc.to_f64();
    let mut vals = vec![0.0f64; n];
    match op {
        BinOp::Add => {
            for i in 0..n {
                vals[i] = sanitize(a[i] + b[i]);
            }
        }
        BinOp::Sub => {
            for i in 0..n {
                vals[i] = sanitize(a[i] - b[i]);
            }
        }
        BinOp::Mul => {
            for i in 0..n {
                vals[i] = sanitize(a[i] * b[i]);
            }
        }
        BinOp::Div => {
            for i in 0..n {
                if b[i] == 0.0 {
                    nulls[i] = true;
                } else {
                    vals[i] = sanitize(a[i] / b[i]);
                }
            }
        }
        BinOp::Mod => {
            for i in 0..n {
                if b[i] == 0.0 {
                    nulls[i] = true;
                } else {
                    vals[i] = sanitize(a[i].rem_euclid(b[i]));
                }
            }
        }
        BinOp::FloorDiv => {
            for i in 0..n {
                if b[i] == 0.0 {
                    nulls[i] = true;
                } else {
                    vals[i] = sanitize((a[i] / b[i]).floor());
                }
            }
        }
        BinOp::Pow => {
            for i in 0..n {
                vals[i] = sanitize(a[i].powf(b[i]));
            }
        }
    }
    Ok(LaneCol { lanes: Lanes::Float(vals), nulls })
}

fn zip_i64(a: &[i64], b: &[i64], f: impl Fn(i64, i64) -> i64) -> Vec<i64> {
    a.iter().zip(b).map(|(&x, &y)| f(x, y)).collect()
}

fn zip_i64_f(a: &[i64], b: &[i64], f: impl Fn(i64, i64) -> f64) -> Vec<f64> {
    a.iter().zip(b).map(|(&x, &y)| f(x, y)).collect()
}

fn compare_dispatch(
    g: &Group,
    consts: &[Value],
    op: crate::ast::CmpOp,
    l: Operand,
    r: Operand,
) -> Kernel<LaneCol> {
    use crate::ast::CmpOp;
    let n = g.sel.len();
    let lc = materialize(resolve(g, consts, l)?, n)?;
    let rc = materialize(resolve(g, consts, r)?, n)?;
    // `Value::compare` sends every numeric pairing through `as_f64`
    // (including Int/Int — large ints compare with f64 precision), with NULL
    // never comparing true; `Ne` must stay false for NULL *and* NaN.
    let a = lc.to_f64();
    let b = rc.to_f64();
    let mut out = vec![false; n];
    match op {
        CmpOp::Lt => {
            for i in 0..n {
                out[i] = a[i] < b[i];
            }
        }
        CmpOp::Le => {
            for i in 0..n {
                out[i] = a[i] <= b[i];
            }
        }
        CmpOp::Gt => {
            for i in 0..n {
                out[i] = a[i] > b[i];
            }
        }
        CmpOp::Ge => {
            for i in 0..n {
                out[i] = a[i] >= b[i];
            }
        }
        CmpOp::Eq => {
            for i in 0..n {
                out[i] = a[i] == b[i];
            }
        }
        CmpOp::Ne => {
            // NOT `a != b`: that is true for NaN operands, where
            // `Value::compare` yields `None` and the scalar kernel says
            // false. `<` and `>` are both false for NaN, matching exactly.
            #[allow(clippy::double_comparisons)]
            for i in 0..n {
                out[i] = a[i] < b[i] || a[i] > b[i];
            }
        }
    }
    for ((o, &nl), &nr) in out.iter_mut().zip(&lc.nulls).zip(&rc.nulls) {
        *o = *o && !nl && !nr;
    }
    Ok(LaneCol { lanes: Lanes::Bool(out), nulls: vec![false; n] })
}

fn call_kernel(g: &Group, func: LibFn, base: usize, n_args: usize) -> Kernel<LaneCol> {
    use LibFn::*;
    let n = g.sel.len();
    let args: Vec<&LaneCol> =
        (0..n_args).map(|i| g.regs[base + i].as_ref().ok_or(Bail)).collect::<Kernel<_>>()?;
    // NULL propagation: any NULL input yields NULL (the call is charged by
    // the caller either way, exactly like `ops::apply_lib`).
    let mut nulls = vec![false; n];
    for a in &args {
        for (o, &x) in nulls.iter_mut().zip(&a.nulls) {
            *o |= x;
        }
    }
    let arg_f = |i: usize| -> Kernel<Vec<f64>> { args.get(i).map(|c| c.to_f64()).ok_or(Bail) };
    // Arity underflow maps to NULL in the scalar kernel (`num(i)` → `None`).
    let needs = match func {
        MathPow | NpPower | NpMinimum | NpMaximum | BuiltinMin | BuiltinMax => 2,
        NpClip => 3,
        _ => 1,
    };
    if n_args < needs {
        return Ok(LaneCol::all_null(n));
    }
    let float_map = |xs: Vec<f64>, f: &dyn Fn(f64) -> f64| -> Lanes {
        Lanes::Float(xs.into_iter().map(f).collect())
    };
    let lanes = match func {
        MathSqrt | NpSqrt => float_map(arg_f(0)?, &|x| sanitize(x.abs().sqrt())),
        MathPow | NpPower => {
            let (a, b) = (arg_f(0)?, arg_f(1)?);
            Lanes::Float((0..n).map(|i| sanitize(a[i].powf(b[i]))).collect())
        }
        MathLog | NpLog => float_map(arg_f(0)?, &|x| sanitize(x.abs().max(1e-12).ln())),
        MathExp | NpExp => float_map(arg_f(0)?, &|x| sanitize(x.min(700.0).exp())),
        MathSin => float_map(arg_f(0)?, &|x| x.sin()),
        MathCos => float_map(arg_f(0)?, &|x| x.cos()),
        MathAtan => float_map(arg_f(0)?, &|x| x.atan()),
        MathFloor => Lanes::Int(arg_f(0)?.into_iter().map(|x| f64_to_i64(x.floor())).collect()),
        MathCeil => Lanes::Int(arg_f(0)?.into_iter().map(|x| f64_to_i64(x.ceil())).collect()),
        MathFabs | NpAbs => float_map(arg_f(0)?, &|x| x.abs()),
        NpMinimum | BuiltinMin => {
            let (a, b) = (arg_f(0)?, arg_f(1)?);
            Lanes::Float((0..n).map(|i| a[i].min(b[i])).collect())
        }
        NpMaximum | BuiltinMax => {
            let (a, b) = (arg_f(0)?, arg_f(1)?);
            Lanes::Float((0..n).map(|i| a[i].max(b[i])).collect())
        }
        NpClip => {
            let (x, lo, hi) = (arg_f(0)?, arg_f(1)?, arg_f(2)?);
            // np_clip, not f64::clamp: masked lanes can carry NaN garbage
            // and clamp panics on NaN bounds.
            Lanes::Float((0..n).map(|i| np_clip(x[i], lo[i], hi[i])).collect())
        }
        NpSign => float_map(arg_f(0)?, &np_sign),
        NpRound | BuiltinRound => float_map(arg_f(0)?, &|x| x.round()),
        BuiltinAbs => match &args[0].lanes {
            Lanes::Int(v) => {
                Lanes::Int(v.iter().map(|x| x.checked_abs().unwrap_or(i64::MAX)).collect())
            }
            _ => float_map(arg_f(0)?, &|x| x.abs()),
        },
        BuiltinInt => Lanes::Int(arg_f(0)?.into_iter().map(f64_to_i64).collect()),
        BuiltinFloat => Lanes::Float(arg_f(0)?),
        // String-shaped builtins are Bail-class; reaching here is a shape
        // mismatch — refuse rather than guess.
        BuiltinLen | BuiltinStr | StrUpper | StrLower | StrStrip | StrReplace | StrStartswith
        | StrEndswith | StrFind | StrSplitCount => return Err(Bail),
    };
    Ok(LaneCol { lanes, nulls })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, CmpOp, Expr as E, Stmt, UdfDef};
    use crate::bytecode::compile;
    use crate::interp::Interpreter;

    fn udf(params: &[&str], body: Vec<Stmt>) -> UdfDef {
        UdfDef { name: "f".into(), params: params.iter().map(|s| s.to_string()).collect(), body }
    }

    /// Run the columnar path against the tree-walker and the row-at-a-time
    /// VM over the given columns; assert values and the merged CostCounter
    /// are bit-identical to both.
    fn differential(u: &UdfDef, cols: &[Vec<Value>]) {
        let prog = compile(u).unwrap();
        let shape = prog.simd_shape();
        let slices: Vec<&[Value]> = cols.iter().map(|c| c.as_slice()).collect();
        let rows = cols.first().map_or(0, |c| c.len());

        let mut simd_vm = Vm::default();
        let mut simd_out = Vec::new();
        let mut simd_cost = CostCounter::new();
        eval_batch_values(&mut simd_vm, &prog, &shape, &slices, &mut simd_out, &mut simd_cost)
            .unwrap();
        assert_eq!(simd_out.len(), rows);

        let mut vm = Vm::default();
        let mut vm_out = Vec::new();
        let mut vm_cost = CostCounter::new();
        vm.eval_batch(&prog, &slices, &mut vm_out, &mut vm_cost).unwrap();
        assert_eq!(simd_out, vm_out, "values differ from row-at-a-time VM");
        assert_eq!(simd_cost, vm_cost, "costs differ from row-at-a-time VM");
        assert_eq!(simd_cost.total.to_bits(), vm_cost.total.to_bits(), "totals not bit-identical");

        let mut interp = Interpreter::default();
        let mut tw_cost = CostCounter::new();
        for r in 0..rows {
            let args: Vec<Value> = cols.iter().map(|c| c[r].clone()).collect();
            let o = interp.eval(u, &args).unwrap();
            assert_eq!(o.value, simd_out[r], "row {r} differs from tree-walker");
            tw_cost.merge(&o.cost);
        }
        assert_eq!(simd_cost, tw_cost, "costs differ from tree-walker");
    }

    fn int_col(n: usize, f: impl Fn(usize) -> i64) -> Vec<Value> {
        (0..n).map(|i| Value::Int(f(i))).collect()
    }

    fn float_col(n: usize, f: impl Fn(usize) -> f64) -> Vec<Value> {
        (0..n).map(|i| Value::Float(f(i))).collect()
    }

    #[test]
    fn straightline_arithmetic_is_columnar_and_identical() {
        // z = x * 1.5 + y; return z * z - x / (y + 1)
        let u = udf(
            &["x", "y"],
            vec![
                Stmt::Assign {
                    target: "z".into(),
                    expr: E::bin(
                        BinOp::Add,
                        E::bin(BinOp::Mul, E::name("x"), E::Float(1.5)),
                        E::name("y"),
                    ),
                },
                Stmt::Return(E::bin(
                    BinOp::Sub,
                    E::bin(BinOp::Mul, E::name("z"), E::name("z")),
                    E::bin(BinOp::Div, E::name("x"), E::bin(BinOp::Add, E::name("y"), E::Int(1))),
                )),
            ],
        );
        let n = 3000; // spans multiple SIMD_CHUNKs
        differential(&u, &[int_col(n, |i| i as i64 % 97), float_col(n, |i| (i % 13) as f64 - 6.0)]);
    }

    #[test]
    fn branch_divergence_splits_selections_identically() {
        // if x < 50: return x * 2.0 else: return math.sqrt(x) + y
        let u = udf(
            &["x", "y"],
            vec![Stmt::If {
                cond: E::cmp(CmpOp::Lt, E::name("x"), E::Int(50)),
                then_body: vec![Stmt::Return(E::bin(BinOp::Mul, E::name("x"), E::Float(2.0)))],
                else_body: vec![Stmt::Return(E::bin(
                    BinOp::Add,
                    E::call(LibFn::MathSqrt, vec![E::name("x")]),
                    E::name("y"),
                ))],
            }],
        );
        let n = 500;
        differential(&u, &[int_col(n, |i| i as i64 % 100), int_col(n, |i| i as i64 % 7)]);
    }

    #[test]
    fn nulls_and_division_by_zero_propagate_identically() {
        let u = udf(
            &["x", "y"],
            vec![Stmt::Return(E::bin(
                BinOp::Add,
                E::bin(BinOp::Div, E::name("x"), E::name("y")),
                E::bin(BinOp::Mod, E::name("x"), E::name("y")),
            ))],
        );
        let n = 200;
        let xs: Vec<Value> =
            (0..n).map(|i| if i % 5 == 0 { Value::Null } else { Value::Int(i as i64) }).collect();
        let ys: Vec<Value> = (0..n).map(|i| Value::Int((i as i64 % 4) - 1)).collect(); // hits 0
        differential(&u, &[xs, ys]);
    }

    #[test]
    fn loops_fall_back_to_the_scalar_vm_per_row() {
        // Straight-line prefix, then a *data-dependent* loop on one branch:
        // loop rows leave the fast path, the others stay columnar. (A
        // constant-count loop would be Counted and stay columnar — see the
        // next test.)
        let u = udf(
            &["x", "y"],
            vec![
                Stmt::Assign {
                    target: "z".into(),
                    expr: E::bin(BinOp::Mul, E::name("x"), E::Int(3)),
                },
                Stmt::If {
                    cond: E::cmp(CmpOp::Lt, E::name("z"), E::Int(60)),
                    then_body: vec![Stmt::Return(E::name("z"))],
                    else_body: vec![Stmt::For {
                        var: "i".into(),
                        count: E::name("y"),
                        body: vec![Stmt::Assign {
                            target: "z".into(),
                            expr: E::bin(BinOp::Add, E::name("z"), E::name("i")),
                        }],
                    }],
                },
                Stmt::Return(E::name("z")),
            ],
        );
        let n = 300;
        differential(&u, &[int_col(n, |i| i as i64 % 50), int_col(n, |i| i as i64 % 4)]);
    }

    #[test]
    fn counted_loops_stay_columnar_with_zero_bails() {
        // for i in range(12) with the limit copied through a local: trip
        // count proven by the dataflow stack, every row completes on the
        // fast path — values and costs still bit-identical to both scalar
        // backends.
        let u = udf(
            &["x", "y"],
            vec![
                Stmt::Assign { target: "n".into(), expr: E::Int(12) },
                Stmt::Assign { target: "z".into(), expr: E::name("y") },
                Stmt::For {
                    var: "i".into(),
                    count: E::name("n"),
                    body: vec![Stmt::Assign {
                        target: "z".into(),
                        expr: E::bin(
                            BinOp::Add,
                            E::name("z"),
                            E::bin(BinOp::Mul, E::name("i"), E::name("x")),
                        ),
                    }],
                },
                Stmt::Return(E::name("z")),
            ],
        );
        let prog = compile(&u).unwrap();
        let shape = prog.simd_shape();
        assert!(shape.class.contains(&InstrClass::Counted), "loop reclassified");
        assert!(!shape.class.contains(&InstrClass::Bail), "nothing bails");
        assert_eq!(shape.trip_count.iter().flatten().copied().max(), Some(12));

        let n = 2500; // spans multiple chunks
        let cols = [int_col(n, |i| i as i64 % 13 - 6), int_col(n, |i| i as i64 % 7)];
        differential(&u, &cols);

        // And the stats must confirm the fast path took every row.
        let typed: Vec<TypedCol> = cols.iter().map(|c| TypedCol::from_values(c).unwrap()).collect();
        let mut stats = SimdBatchStats::default();
        let mut out = Vec::new();
        eval_batch_typed_with_stats(
            &mut Vm::default(),
            &prog,
            &shape,
            &typed,
            &mut out,
            &mut CostCounter::new(),
            &mut stats,
        )
        .unwrap();
        assert_eq!(stats.bail_rows, 0, "counted loop must not bail: {stats:?}");
        assert_eq!(stats.fast_rows, n as u64);
    }

    #[test]
    fn counted_loop_with_branch_divergence_inside_the_body_matches() {
        // Divergence *inside* a counted loop body: groups split mid-loop and
        // each continues its own lockstep iterations.
        let u = udf(
            &["x", "y"],
            vec![
                Stmt::Assign { target: "z".into(), expr: E::Int(0) },
                Stmt::For {
                    var: "i".into(),
                    count: E::Int(4),
                    body: vec![Stmt::If {
                        cond: E::cmp(CmpOp::Lt, E::name("x"), E::Int(25)),
                        then_body: vec![Stmt::Assign {
                            target: "z".into(),
                            expr: E::bin(BinOp::Add, E::name("z"), E::name("i")),
                        }],
                        else_body: vec![Stmt::Assign {
                            target: "z".into(),
                            expr: E::bin(BinOp::Sub, E::name("z"), E::name("y")),
                        }],
                    }],
                },
                Stmt::Return(E::name("z")),
            ],
        );
        let n = 400;
        differential(&u, &[int_col(n, |i| i as i64 % 50), int_col(n, |i| i as i64 % 9)]);
        // Null rows in the limit-feeding columns don't exist here, but null
        // *data* rows must still match through the loop.
        let xs: Vec<Value> =
            (0..64).map(|i| if i % 5 == 0 { Value::Null } else { Value::Int(i) }).collect();
        let ys: Vec<Value> = (0..64).map(Value::Int).collect();
        differential(&u, &[xs, ys]);
    }

    #[test]
    fn lib_calls_and_comparisons_match() {
        // w = np.clip(x, 0, 10); return np.sign(w - y) + math.floor(x / 3)
        let u = udf(
            &["x", "y"],
            vec![
                Stmt::Assign {
                    target: "w".into(),
                    expr: E::call(LibFn::NpClip, vec![E::name("x"), E::Int(0), E::Int(10)]),
                },
                Stmt::Return(E::bin(
                    BinOp::Add,
                    E::call(LibFn::NpSign, vec![E::bin(BinOp::Sub, E::name("w"), E::name("y"))]),
                    E::call(LibFn::MathFloor, vec![E::bin(BinOp::Div, E::name("x"), E::Int(3))]),
                )),
            ],
        );
        let n = 256;
        differential(&u, &[float_col(n, |i| (i as f64) - 128.0), int_col(n, |i| i as i64 % 11)]);
    }

    #[test]
    fn float_to_int_cast_edges_match_across_paths() {
        // int(x) + math.ceil(y): NaN, ±inf and beyond-i64 floats saturate
        // identically on every path.
        let u = udf(
            &["x", "y"],
            vec![Stmt::Return(E::bin(
                BinOp::Add,
                E::call(LibFn::BuiltinInt, vec![E::name("x")]),
                E::call(LibFn::MathCeil, vec![E::name("y")]),
            ))],
        );
        let edges = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 1e19, -1e19, 9.5, -9.5, 0.0, -0.0];
        let xs: Vec<Value> =
            (0..edges.len() * 8).map(|i| Value::Float(edges[i % edges.len()])).collect();
        let ys: Vec<Value> =
            (0..edges.len() * 8).map(|i| Value::Float(edges[(i + 3) % edges.len()])).collect();
        differential(&u, &[xs, ys]);
    }

    #[test]
    fn bool_columns_and_boolops_match() {
        // return (b and x < 3) or y — exercises short-circuit splits over a
        // Bool input column.
        let u = udf(
            &["b", "x", "y"],
            vec![Stmt::Return(E::BoolOp {
                is_and: false,
                left: Box::new(E::BoolOp {
                    is_and: true,
                    left: Box::new(E::name("b")),
                    right: Box::new(E::cmp(CmpOp::Lt, E::name("x"), E::Int(3))),
                }),
                right: Box::new(E::name("y")),
            })],
        );
        let n = 128;
        let bs: Vec<Value> = (0..n).map(|i| Value::Bool(i % 3 == 0)).collect();
        differential(&u, &[bs, int_col(n, |i| i as i64 % 6), int_col(n, |i| (i as i64) % 2)]);
    }

    #[test]
    fn string_udfs_take_the_scalar_path_wholesale() {
        let u = udf(
            &["s", "y"],
            vec![Stmt::Return(E::Method {
                func: LibFn::StrUpper,
                recv: Box::new(E::name("s")),
                args: vec![],
            })],
        );
        let prog = compile(&u).unwrap();
        let shape = prog.simd_shape();
        assert!(!shape.has_fast_path);
        let ss: Vec<Value> = (0..10).map(|i| Value::Text(format!("ab{i}"))).collect();
        let ys: Vec<Value> = (0..10).map(Value::Int).collect();
        let slices: Vec<&[Value]> = vec![&ss, &ys];
        let mut out = Vec::new();
        let mut cost = CostCounter::new();
        eval_batch_values(&mut Vm::default(), &prog, &shape, &slices, &mut out, &mut cost).unwrap();
        let mut vm_out = Vec::new();
        let mut vm_cost = CostCounter::new();
        Vm::default().eval_batch(&prog, &slices, &mut vm_out, &mut vm_cost).unwrap();
        assert_eq!(out, vm_out);
        assert_eq!(cost, vm_cost);
    }

    #[test]
    fn undefined_variable_paths_error_identically() {
        // z defined only on the then-path; else-path rows must report the
        // tree-walker's undefined-variable error, in the VM's batch order.
        let u = udf(
            &["x"],
            vec![
                Stmt::If {
                    cond: E::cmp(CmpOp::Lt, E::name("x"), E::Int(5)),
                    then_body: vec![Stmt::Assign { target: "z".into(), expr: E::Int(1) }],
                    else_body: vec![],
                },
                Stmt::Return(E::name("z")),
            ],
        );
        let prog = compile(&u).unwrap();
        let shape = prog.simd_shape();
        let xs: Vec<Value> = (0..20).map(Value::Int).collect();
        let slices: Vec<&[Value]> = vec![&xs];
        let mut out = Vec::new();
        let mut cost = CostCounter::new();
        let simd_err =
            eval_batch_values(&mut Vm::default(), &prog, &shape, &slices, &mut out, &mut cost)
                .unwrap_err();
        let mut vm_out = Vec::new();
        let mut vm_cost = CostCounter::new();
        let vm_err =
            Vm::default().eval_batch(&prog, &slices, &mut vm_out, &mut vm_cost).unwrap_err();
        assert_eq!(simd_err, vm_err);
        assert_eq!(out, vm_out, "partial outputs before the failing row must match");
        assert_eq!(cost, vm_cost);
    }

    #[test]
    fn masked_division_garbage_never_panics_downstream_kernels() {
        // lo = a / b; return np.clip(c, lo, 100): a 0/0 row leaves a masked
        // lane feeding np.clip's lower bound — the clip kernel must not
        // panic on it, and the row must come back Null like the scalar VM.
        let u = udf(
            &["a", "b", "c"],
            vec![
                Stmt::Assign {
                    target: "lo".into(),
                    expr: E::bin(BinOp::Div, E::name("a"), E::name("b")),
                },
                Stmt::Return(E::call(
                    LibFn::NpClip,
                    vec![E::name("c"), E::name("lo"), E::Int(100)],
                )),
            ],
        );
        let n = 64;
        let asv = int_col(n, |i| if i % 7 == 0 { 0 } else { i as i64 });
        let bs = int_col(n, |i| if i % 7 == 0 { 0 } else { (i as i64 % 5) + 1 });
        let cs = int_col(n, |i| i as i64);
        differential(&u, &[asv, bs, cs]);
    }

    #[test]
    fn typed_cols_round_trip_and_reject_mixed_types() {
        let vals = vec![Value::Int(1), Value::Null, Value::Int(3)];
        let t = TypedCol::from_values(&vals).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.value(0), Value::Int(1));
        assert_eq!(t.value(1), Value::Null);
        assert!(TypedCol::from_values(&[Value::Int(1), Value::Float(2.0)]).is_none());
        assert!(TypedCol::from_values(&[Value::Text("x".into())]).is_none());
        assert!(TypedCol::for_type(DataType::Text, 4).is_none());
    }

    #[test]
    fn ragged_typed_batch_is_a_typed_error() {
        let u = udf(&["x", "y"], vec![Stmt::Return(E::name("x"))]);
        let prog = compile(&u).unwrap();
        let shape = prog.simd_shape();
        let a = TypedCol::from_values(&int_col(4, |i| i as i64)).unwrap();
        let b = TypedCol::from_values(&int_col(2, |i| i as i64)).unwrap();
        let err = eval_batch_typed(
            &mut Vm::default(),
            &prog,
            &shape,
            &[a, b],
            &mut Vec::new(),
            &mut CostCounter::new(),
        )
        .unwrap_err();
        assert!(matches!(&err, GracefulError::Eval(m) if m.contains("ragged batch")), "{err}");
    }
}
