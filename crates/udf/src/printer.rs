//! Pretty-printer: AST → Python-like source.
//!
//! The printer is the inverse of the parser — `parse(print(udf))` must
//! reproduce the same AST (verified by property tests). Expressions are
//! printed with minimal parentheses based on operator precedence.

use crate::ast::{BinOp, Expr, Stmt, UdfDef, UnOp};

/// Render a UDF back to source code.
pub fn print_udf(udf: &UdfDef) -> String {
    let mut out = String::new();
    out.push_str(&format!("def {}({}):\n", udf.name, udf.params.join(", ")));
    print_block(&udf.body, 1, &mut out);
    out
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_block(body: &[Stmt], level: usize, out: &mut String) {
    if body.is_empty() {
        // Valid blocks are never empty in our AST, but keep printable.
        indent(level, out);
        out.push_str("return None\n");
        return;
    }
    for stmt in body {
        match stmt {
            Stmt::Assign { target, expr } => {
                indent(level, out);
                out.push_str(&format!("{target} = {}\n", print_expr(expr)));
            }
            Stmt::If { cond, then_body, else_body } => {
                indent(level, out);
                out.push_str(&format!("if {}:\n", print_expr(cond)));
                print_block(then_body, level + 1, out);
                if !else_body.is_empty() {
                    indent(level, out);
                    out.push_str("else:\n");
                    print_block(else_body, level + 1, out);
                }
            }
            Stmt::For { var, count, body } => {
                indent(level, out);
                out.push_str(&format!("for {var} in range({}):\n", print_expr(count)));
                print_block(body, level + 1, out);
            }
            Stmt::While { cond, body } => {
                indent(level, out);
                out.push_str(&format!("while {}:\n", print_expr(cond)));
                print_block(body, level + 1, out);
            }
            Stmt::Return(e) => {
                indent(level, out);
                out.push_str(&format!("return {}\n", print_expr(e)));
            }
        }
    }
}

/// Precedence levels; larger binds tighter. Mirrors the parser.
fn precedence(e: &Expr) -> u8 {
    match e {
        Expr::BoolOp { is_and: false, .. } => 1, // or
        Expr::BoolOp { is_and: true, .. } => 2,  // and
        Expr::Unary { op: UnOp::Not, .. } => 3,
        Expr::Compare { .. } => 4,
        Expr::Binary { op: BinOp::Add | BinOp::Sub, .. } => 5,
        Expr::Binary { op: BinOp::Mul | BinOp::Div | BinOp::Mod | BinOp::FloorDiv, .. } => 6,
        Expr::Unary { op: UnOp::Neg, .. } => 7,
        Expr::Binary { op: BinOp::Pow, .. } => 8,
        _ => 10, // atoms, calls, methods
    }
}

/// Print an expression with minimal parentheses.
pub fn print_expr(e: &Expr) -> String {
    print_prec(e)
}

fn child(parent_prec: u8, e: &Expr, needs_paren_on_tie: bool) -> String {
    let p = precedence(e);
    let s = print_prec(e);
    if p < parent_prec || (p == parent_prec && needs_paren_on_tie) {
        format!("({s})")
    } else {
        s
    }
}

fn print_prec(e: &Expr) -> String {
    match e {
        Expr::Name(n) => n.clone(),
        Expr::Int(i) => {
            if *i < 0 {
                format!("({i})")
            } else {
                i.to_string()
            }
        }
        Expr::Float(f) => {
            let neg = *f < 0.0;
            let body = if f.fract() == 0.0 && f.abs() < 1e15 {
                format!("{:.1}", f)
            } else {
                format!("{}", f)
            };
            if neg {
                format!("({body})")
            } else {
                body
            }
        }
        Expr::Str(s) => format!("'{}'", s.replace('\'', "")),
        Expr::Bool(b) => if *b { "True" } else { "False" }.to_string(),
        Expr::NoneLit => "None".to_string(),
        Expr::Unary { op, operand } => {
            let prec = precedence(e);
            match op {
                UnOp::Neg => format!("-{}", child(prec, operand, true)),
                UnOp::Not => format!("not {}", child(prec, operand, false)),
            }
        }
        Expr::Binary { op, left, right } => {
            let prec = precedence(e);
            if *op == BinOp::Pow {
                // Right associative: parenthesize left on tie.
                format!("{} ** {}", child(prec, left, true), child(prec, right, false))
            } else {
                // Left associative: parenthesize right on tie.
                format!("{} {} {}", child(prec, left, false), op.symbol(), child(prec, right, true))
            }
        }
        Expr::Compare { op, left, right } => {
            let prec = precedence(e);
            format!("{} {} {}", child(prec, left, true), op.symbol(), child(prec, right, true))
        }
        Expr::BoolOp { is_and, left, right } => {
            let prec = precedence(e);
            let sym = if *is_and { "and" } else { "or" };
            format!("{} {sym} {}", child(prec, left, false), child(prec, right, true))
        }
        Expr::Call { func, args } => {
            let args: Vec<String> = args.iter().map(print_prec).collect();
            format!("{}({})", func.python_name(), args.join(", "))
        }
        Expr::Method { func, recv, args } => {
            let args: Vec<String> = args.iter().map(print_prec).collect();
            let r = child(10, recv, false);
            format!("{r}.{}({})", func.python_name(), args.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CmpOp;
    use crate::libfns::LibFn;
    use crate::parser::parse_udf;

    fn round_trip(src: &str) {
        let udf = parse_udf(src).unwrap();
        let printed = print_udf(&udf);
        let reparsed = parse_udf(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- printed ---\n{printed}"));
        assert_eq!(udf, reparsed, "round trip changed AST:\n{printed}");
    }

    #[test]
    fn round_trips_paper_example() {
        round_trip(
            "def func(x, y):\n    if x < 20:\n        z = x ** 2\n    else:\n        z = 0\n        for i in range(100):\n            z = math.pow(math.sqrt(y), i) + z\n    return z\n",
        );
    }

    #[test]
    fn round_trips_operators() {
        round_trip("def f(a, b):\n    return (a + b) * (a - b) / (b + 1) % 7 // 2\n");
        round_trip("def f(a, b):\n    return a ** (b ** 2) - (a ** b) ** 2\n");
        round_trip("def f(a):\n    return -(a + 1) * -a\n");
    }

    #[test]
    fn round_trips_bool_logic() {
        round_trip("def f(a, b):\n    if a < 1 and (b > 2 or a == b) and not b != 3:\n        return 1\n    return 0\n");
    }

    #[test]
    fn round_trips_strings() {
        round_trip("def f(s):\n    t = s.upper().replace('a', 'b')\n    if t.startswith('x'):\n        return len(t)\n    return t.find('q')\n");
    }

    #[test]
    fn round_trips_while() {
        round_trip(
            "def f(x):\n    i = 0\n    while i < x and i < 100:\n        i = i + 1\n    return i\n",
        );
    }

    #[test]
    fn negative_literals_print_parenthesized() {
        let udf = crate::ast::UdfDef {
            name: "f".into(),
            params: vec!["x".into()],
            body: vec![Stmt::Return(Expr::bin(BinOp::Sub, Expr::name("x"), Expr::Int(-5)))],
        };
        let printed = print_udf(&udf);
        assert!(printed.contains("(-5)"), "{printed}");
        let reparsed = parse_udf(&printed).unwrap();
        assert_eq!(udf, reparsed);
    }

    #[test]
    fn subtraction_associativity_preserved() {
        // (a - b) - c prints without parens; a - (b - c) keeps them.
        let l = Expr::bin(
            BinOp::Sub,
            Expr::bin(BinOp::Sub, Expr::name("a"), Expr::name("b")),
            Expr::name("c"),
        );
        assert_eq!(print_expr(&l), "a - b - c");
        let r = Expr::bin(
            BinOp::Sub,
            Expr::name("a"),
            Expr::bin(BinOp::Sub, Expr::name("b"), Expr::name("c")),
        );
        assert_eq!(print_expr(&r), "a - (b - c)");
    }

    #[test]
    fn comparison_prints() {
        let e = Expr::cmp(CmpOp::Le, Expr::name("x"), Expr::Int(3));
        assert_eq!(print_expr(&e), "x <= 3");
    }

    #[test]
    fn call_prints_qualified_names() {
        let e = Expr::call(LibFn::NpClip, vec![Expr::name("x"), Expr::Int(0), Expr::Int(1)]);
        assert_eq!(print_expr(&e), "np.clip(x, 0, 1)");
    }
}
