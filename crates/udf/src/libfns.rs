//! The closed registry of library functions callable from UDFs.
//!
//! The paper assumes "a superset of arithmetic and string operations and
//! library calls, covering all major usages [...] as well as numpy and math
//! library calls" encoded as one-hot vectors (Section III-A). This enum *is*
//! that vocabulary: every entry has a stable one-hot index, a printable
//! Python name, an arity, and a base cost weight used by the interpreter's
//! work accounting.

/// Category of a library function, used for coarse featurization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LibCategory {
    Math,
    Numpy,
    Builtin,
    Str,
}

/// Every callable the UDF language supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LibFn {
    // --- math module ---
    MathSqrt,
    MathPow,
    MathLog,
    MathExp,
    MathSin,
    MathCos,
    MathFloor,
    MathCeil,
    MathFabs,
    MathAtan,
    // --- numpy (scalar usage) ---
    NpAbs,
    NpSqrt,
    NpLog,
    NpExp,
    NpPower,
    NpMinimum,
    NpMaximum,
    NpClip,
    NpSign,
    NpRound,
    // --- Python builtins ---
    BuiltinLen,
    BuiltinAbs,
    BuiltinInt,
    BuiltinFloat,
    BuiltinStr,
    BuiltinMin,
    BuiltinMax,
    BuiltinRound,
    // --- string methods ---
    StrUpper,
    StrLower,
    StrStrip,
    StrReplace,
    StrStartswith,
    StrEndswith,
    StrFind,
    StrSplitCount, // `len(s.split(sep))` fused: counts separator occurrences
}

impl LibFn {
    /// Every function in one-hot order.
    pub const ALL: [LibFn; 36] = [
        LibFn::MathSqrt,
        LibFn::MathPow,
        LibFn::MathLog,
        LibFn::MathExp,
        LibFn::MathSin,
        LibFn::MathCos,
        LibFn::MathFloor,
        LibFn::MathCeil,
        LibFn::MathFabs,
        LibFn::MathAtan,
        LibFn::NpAbs,
        LibFn::NpSqrt,
        LibFn::NpLog,
        LibFn::NpExp,
        LibFn::NpPower,
        LibFn::NpMinimum,
        LibFn::NpMaximum,
        LibFn::NpClip,
        LibFn::NpSign,
        LibFn::NpRound,
        LibFn::BuiltinLen,
        LibFn::BuiltinAbs,
        LibFn::BuiltinInt,
        LibFn::BuiltinFloat,
        LibFn::BuiltinStr,
        LibFn::BuiltinMin,
        LibFn::BuiltinMax,
        LibFn::BuiltinRound,
        LibFn::StrUpper,
        LibFn::StrLower,
        LibFn::StrStrip,
        LibFn::StrReplace,
        LibFn::StrStartswith,
        LibFn::StrEndswith,
        LibFn::StrFind,
        LibFn::StrSplitCount,
    ];

    /// Number of functions (one-hot width).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable one-hot index.
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&f| f == self).expect("fn in ALL")
    }

    pub fn category(self) -> LibCategory {
        use LibFn::*;
        match self {
            MathSqrt | MathPow | MathLog | MathExp | MathSin | MathCos | MathFloor | MathCeil
            | MathFabs | MathAtan => LibCategory::Math,
            NpAbs | NpSqrt | NpLog | NpExp | NpPower | NpMinimum | NpMaximum | NpClip | NpSign
            | NpRound => LibCategory::Numpy,
            BuiltinLen | BuiltinAbs | BuiltinInt | BuiltinFloat | BuiltinStr | BuiltinMin
            | BuiltinMax | BuiltinRound => LibCategory::Builtin,
            StrUpper | StrLower | StrStrip | StrReplace | StrStartswith | StrEndswith | StrFind
            | StrSplitCount => LibCategory::Str,
        }
    }

    /// True for string *methods* (printed as `recv.name(...)`).
    pub fn is_method(self) -> bool {
        self.category() == LibCategory::Str
    }

    /// Python-style printable name.
    pub fn python_name(self) -> &'static str {
        use LibFn::*;
        match self {
            MathSqrt => "math.sqrt",
            MathPow => "math.pow",
            MathLog => "math.log",
            MathExp => "math.exp",
            MathSin => "math.sin",
            MathCos => "math.cos",
            MathFloor => "math.floor",
            MathCeil => "math.ceil",
            MathFabs => "math.fabs",
            MathAtan => "math.atan",
            NpAbs => "np.abs",
            NpSqrt => "np.sqrt",
            NpLog => "np.log",
            NpExp => "np.exp",
            NpPower => "np.power",
            NpMinimum => "np.minimum",
            NpMaximum => "np.maximum",
            NpClip => "np.clip",
            NpSign => "np.sign",
            NpRound => "np.round",
            BuiltinLen => "len",
            BuiltinAbs => "abs",
            BuiltinInt => "int",
            BuiltinFloat => "float",
            BuiltinStr => "str",
            BuiltinMin => "min",
            BuiltinMax => "max",
            BuiltinRound => "round",
            StrUpper => "upper",
            StrLower => "lower",
            StrStrip => "strip",
            StrReplace => "replace",
            StrStartswith => "startswith",
            StrEndswith => "endswith",
            StrFind => "find",
            StrSplitCount => "splitcount",
        }
    }

    /// Number of arguments (excluding the receiver for methods).
    pub fn arity(self) -> usize {
        use LibFn::*;
        match self {
            MathPow | NpPower | NpMinimum | NpMaximum | BuiltinMin | BuiltinMax => 2,
            NpClip => 3,
            StrReplace => 2,
            StrStartswith | StrEndswith | StrFind | StrSplitCount => 1,
            StrUpper | StrLower | StrStrip => 0,
            _ => 1,
        }
    }

    /// Base cost in work units (≈ simulated nanoseconds in CPython terms).
    ///
    /// `numpy` scalar calls are *more* expensive than `math` ones — exactly
    /// the ufunc-dispatch overhead DuckDB's Python UDFs exhibit; string
    /// methods additionally pay a per-character cost in the interpreter.
    pub fn base_cost(self) -> f64 {
        use LibFn::*;
        match self {
            MathSqrt | MathFabs | MathFloor | MathCeil => 60.0,
            MathPow | MathLog | MathExp | MathSin | MathCos | MathAtan => 90.0,
            NpAbs | NpSqrt | NpSign => 320.0,
            NpLog | NpExp | NpPower | NpRound => 380.0,
            NpMinimum | NpMaximum | NpClip => 340.0,
            BuiltinLen => 25.0,
            BuiltinAbs | BuiltinInt | BuiltinFloat | BuiltinRound => 35.0,
            BuiltinStr => 55.0,
            BuiltinMin | BuiltinMax => 45.0,
            StrUpper | StrLower | StrStrip => 50.0,
            StrReplace | StrFind | StrSplitCount => 70.0,
            StrStartswith | StrEndswith => 40.0,
        }
    }

    /// Resolve a parsed call by module/name. `recv_is_str` selects between
    /// builtins and string methods for bare names.
    pub fn resolve(module: Option<&str>, name: &str) -> Option<LibFn> {
        use LibFn::*;
        let f = match (module, name) {
            (Some("math"), "sqrt") => MathSqrt,
            (Some("math"), "pow") => MathPow,
            (Some("math"), "log") => MathLog,
            (Some("math"), "exp") => MathExp,
            (Some("math"), "sin") => MathSin,
            (Some("math"), "cos") => MathCos,
            (Some("math"), "floor") => MathFloor,
            (Some("math"), "ceil") => MathCeil,
            (Some("math"), "fabs") => MathFabs,
            (Some("math"), "atan") => MathAtan,
            (Some("np") | Some("numpy"), "abs") => NpAbs,
            (Some("np") | Some("numpy"), "sqrt") => NpSqrt,
            (Some("np") | Some("numpy"), "log") => NpLog,
            (Some("np") | Some("numpy"), "exp") => NpExp,
            (Some("np") | Some("numpy"), "power") => NpPower,
            (Some("np") | Some("numpy"), "minimum") => NpMinimum,
            (Some("np") | Some("numpy"), "maximum") => NpMaximum,
            (Some("np") | Some("numpy"), "clip") => NpClip,
            (Some("np") | Some("numpy"), "sign") => NpSign,
            (Some("np") | Some("numpy"), "round") => NpRound,
            (None, "len") => BuiltinLen,
            (None, "abs") => BuiltinAbs,
            (None, "int") => BuiltinInt,
            (None, "float") => BuiltinFloat,
            (None, "str") => BuiltinStr,
            (None, "min") => BuiltinMin,
            (None, "max") => BuiltinMax,
            (None, "round") => BuiltinRound,
            _ => return None,
        };
        Some(f)
    }

    /// Resolve a method name (`s.upper()` …).
    pub fn resolve_method(name: &str) -> Option<LibFn> {
        use LibFn::*;
        Some(match name {
            "upper" => StrUpper,
            "lower" => StrLower,
            "strip" => StrStrip,
            "replace" => StrReplace,
            "startswith" => StrStartswith,
            "endswith" => StrEndswith,
            "find" => StrFind,
            "splitcount" => StrSplitCount,
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_unique() {
        for (i, f) in LibFn::ALL.iter().enumerate() {
            assert_eq!(f.index(), i);
        }
        assert_eq!(LibFn::COUNT, LibFn::ALL.len());
    }

    #[test]
    fn resolve_round_trips_for_free_functions() {
        for f in LibFn::ALL {
            if f.is_method() {
                assert_eq!(LibFn::resolve_method(f.python_name()), Some(f));
            } else {
                let full = f.python_name();
                let (module, name) = match full.split_once('.') {
                    Some((m, n)) => (Some(m), n),
                    None => (None, full),
                };
                assert_eq!(LibFn::resolve(module, name), Some(f), "resolving {full}");
            }
        }
    }

    #[test]
    fn numpy_is_pricier_than_math() {
        assert!(LibFn::NpSqrt.base_cost() > LibFn::MathSqrt.base_cost());
        assert!(LibFn::NpLog.base_cost() > LibFn::MathLog.base_cost());
    }

    #[test]
    fn unknown_names_do_not_resolve() {
        assert_eq!(LibFn::resolve(Some("math"), "nope"), None);
        assert_eq!(LibFn::resolve(Some("os"), "system"), None);
        assert_eq!(LibFn::resolve_method("join"), None);
    }

    #[test]
    fn arities() {
        assert_eq!(LibFn::MathSqrt.arity(), 1);
        assert_eq!(LibFn::MathPow.arity(), 2);
        assert_eq!(LibFn::NpClip.arity(), 3);
        assert_eq!(LibFn::StrUpper.arity(), 0);
        assert_eq!(LibFn::StrReplace.arity(), 2);
    }
}
