//! Zero-shot cost estimation across databases — a miniature Exp 1.
//!
//! Trains on three databases and predicts runtimes on a fourth, unseen one,
//! under all four cardinality-annotation methods.
//!
//! ```sh
//! cargo run --release --example cost_estimation
//! ```

use graceful::prelude::*;

fn main() {
    let cfg = ScaleConfig {
        data_scale: 0.08,
        queries_per_db: 50,
        epochs: 14,
        hidden: 24,
        ..ScaleConfig::default()
    };
    println!("building corpora (train: tpc_h, ssb, movielens; test: airline)...");
    let train = vec![
        build_corpus("tpc_h", &cfg, 1).unwrap(),
        build_corpus("ssb", &cfg, 2).unwrap(),
        build_corpus("movielens", &cfg, 3).unwrap(),
    ];
    let test = build_corpus("airline", &cfg, 4).unwrap();
    let n_train: usize = train.iter().map(|c| c.queries.len()).sum();
    println!("training GRACEFUL on {n_train} queries...");
    let model = train_graceful(&train, &cfg, Featurizer::full());

    println!("\nzero-shot Q-errors on `airline` ({} queries):", test.queries.len());
    println!("{:<18} {:>8} {:>8} {:>8}", "card. estimator", "median", "p95", "p99");
    for kind in EstimatorKind::ALL {
        let recs = evaluate_model(&model, &test, kind, 11);
        let s = summarize(&recs, |r| r.has_udf);
        println!("{:<18} {:>8.2} {:>8.2} {:>8.2}", kind.label(), s.median, s.p95, s.p99);
    }
    println!("\n(expect the Actual row to be the best and DuckDB-like the worst —");
    println!(" the model is robust to small estimation errors, not to naive ones)");
}
