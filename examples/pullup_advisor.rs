//! The Figure 1 scenario as a library example: an expensive UDF filter on a
//! join query, where the textbook push-down heuristic is badly wrong — and
//! the GRACEFUL advisor fixes it.
//!
//! ```sh
//! cargo run --release --example pullup_advisor
//! ```

use graceful::prelude::*;
use graceful_plan::querygen::JoinStep;
use graceful_plan::{AggFunc, ColRef, Pred};
use graceful_udf::ast::CmpOp;
use graceful_udf::GeneratedUdf;
use std::sync::Arc;

fn main() {
    let db = generate(&schema("imdb"), 0.25, 7);
    // An expensive keyword-scoring UDF (loops dominate on most rows).
    let src = "\
def udf(movie_id, keyword_id):
    z = keyword_id * 1.0
    if keyword_id < 400:
        z = z + math.sqrt(movie_id)
    else:
        for i in range(50):
            z = z + math.pow(math.sqrt(keyword_id + 1), 2) / (abs(movie_id) + 1)
    return z
";
    let def = parse_udf(src).unwrap();
    let udf = Arc::new(GeneratedUdf {
        source: print_udf(&def),
        def,
        table: "movie_keyword".into(),
        input_columns: vec!["movie_id".into(), "keyword_id".into()],
        adaptations: vec![],
    });
    // Selective series_years filter high in the plan (like the paper's
    // `t.series_years = '1987-1997'`).
    let series = db.stats("title").unwrap().column("series_years").unwrap().mcv[0].0.clone();
    let spec = QuerySpec {
        id: 1,
        database: db.name.clone(),
        base_table: "movie_keyword".into(),
        joins: vec![
            JoinStep {
                table: "title".into(),
                left_col: ColRef::new("movie_keyword", "movie_id"),
                right_col: ColRef::new("title", "id"),
            },
            JoinStep {
                table: "movie_info_idx".into(),
                left_col: ColRef::new("title", "id"),
                right_col: ColRef::new("movie_info_idx", "movie_id"),
            },
        ],
        filters: vec![Pred::new("title", "series_years", CmpOp::Eq, series)],
        udf: Some(udf),
        udf_usage: UdfUsage::Filter,
        udf_filter_op: CmpOp::Le,
        udf_filter_literal: 1.0e9,
        target_udf_selectivity: 0.9,
        agg: AggFunc::CountStar,
        agg_col: None,
    };

    // Ground truth: execute both placements.
    let session = Session::from_env().expect("valid GRACEFUL_* configuration");
    let exec = session.executor(&db);
    let mut pd = build_plan(&spec, UdfPlacement::PushDown).unwrap();
    let mut pu = build_plan(&spec, UdfPlacement::PullUp).unwrap();
    let pd_run = exec.run_and_annotate(&mut pd, 1).unwrap();
    let pu_run = exec.run_and_annotate(&mut pu, 1).unwrap();
    println!(
        "push-down: {:8.2} ms  (UDF on {:>7} rows)",
        pd_run.runtime_ns * 1e-6,
        pd_run.udf_input_rows
    );
    println!(
        "pull-up:   {:8.2} ms  (UDF on {:>7} rows)",
        pu_run.runtime_ns * 1e-6,
        pu_run.udf_input_rows
    );
    println!("speedup from pull-up: {:.1}x\n", pd_run.runtime_ns / pu_run.runtime_ns);

    // Train a model on two *other* databases (zero-shot for IMDB).
    let cfg = ScaleConfig {
        data_scale: 0.08,
        queries_per_db: 40,
        epochs: 12,
        hidden: 24,
        ..ScaleConfig::default()
    };
    println!("training advisor model on tpc_h + financial (imdb unseen)...");
    let train = vec![
        build_corpus("tpc_h", &cfg, 21).unwrap(),
        build_corpus("financial", &cfg, 22).unwrap(),
    ];
    let model = train_graceful(&train, &cfg, Featurizer::full());
    let advisor = PullUpAdvisor::new(&model);
    let est = DataDrivenCard::build(&db, 9);
    for strat in [Strategy::Conservative, Strategy::AreaUnderCurve, Strategy::UpperBoundCardinality]
    {
        let d = advisor.decide(&db, &spec, &est, strat, None).unwrap();
        let truth = pu_run.runtime_ns < pd_run.runtime_ns;
        println!(
            "{:<28} -> {}  ({}correct)",
            format!("{strat:?}"),
            if d.pull_up { "PULL UP" } else { "push down" },
            if d.pull_up == truth { "" } else { "in" }
        );
    }
}
