//! Lint the generated UDF corpus through the bytecode verifier and a set of
//! structural lints over the compiled programs. Exits non-zero on the first
//! corpus whose programs produce any diagnostic — CI runs this in both debug
//! and `--release` to pin the compiler/verifier contract.
//!
//! Checks per program:
//! - `compile_with(.., Strict)` succeeds (jump targets, register/const
//!   bounds, cost-charge placement, loop pairing, definite initialization),
//!   and an explicit re-`verify` of the result is clean;
//! - the SIMD shape covers every instruction, `Counted` classification and
//!   recorded trip counts agree instruction-by-instruction, and no proven
//!   trip count exceeds [`MAX_COUNTED_TRIPS`](graceful::udf::analysis::MAX_COUNTED_TRIPS);
//! - the entry block dominates every reachable block of the CFG;
//! - the constant pool carries no duplicates.
//!
//! ```sh
//! cargo run --release --example udf_lint
//! ```

use graceful::prelude::*;
use graceful::storage::datagen::{generate, schema};
use graceful::udf::analysis::{verify, Cfg, MAX_COUNTED_TRIPS};
use graceful::udf::bytecode::Instr;
use graceful::udf::{compile_with, InstrClass, Program};
use graceful_common::config::VerifyMode;

const SCHEMAS: [&str; 6] = ["tpc_h", "imdb", "ssb", "airline", "baseball", "movielens"];
const SEEDS_PER_SCHEMA: u64 = 250;

fn lint(prog: &Program) -> Vec<String> {
    let mut diags = Vec::new();
    if let Err(e) = verify(prog) {
        diags.push(format!("re-verification failed: {e}"));
    }

    let shape = prog.simd_shape();
    if shape.class.len() != prog.instrs.len() {
        diags.push(format!(
            "SIMD shape covers {} instructions, program has {}",
            shape.class.len(),
            prog.instrs.len()
        ));
    }
    for (pc, class) in shape.class.iter().enumerate() {
        let trip = shape.trip_count.get(pc).copied().flatten();
        if (*class == InstrClass::Counted) != trip.is_some() {
            diags.push(format!("pc {pc}: class {class:?} disagrees with trip count {trip:?}"));
        }
        if *class == InstrClass::Counted
            && !matches!(prog.instrs[pc], Instr::ForInit { .. } | Instr::ForNext { .. })
        {
            diags.push(format!("pc {pc}: Counted on a non-loop instruction"));
        }
        if let Some(n) = trip {
            if i64::from(n) > MAX_COUNTED_TRIPS {
                diags.push(format!("pc {pc}: trip count {n} exceeds {MAX_COUNTED_TRIPS}"));
            }
        }
    }

    match Cfg::build(prog) {
        Ok(cfg) => {
            let idoms = cfg.idoms();
            for b in cfg.rpo() {
                if !cfg.dominates(&idoms, 0, b) {
                    diags.push(format!("entry does not dominate reachable block {b}"));
                }
            }
        }
        Err(e) => diags.push(format!("CFG construction failed: {e}")),
    }

    for (i, c) in prog.consts.iter().enumerate() {
        if prog.consts[..i].contains(c) {
            diags.push(format!("constant pool entry {i} ({c:?}) is a duplicate"));
        }
    }
    diags
}

fn main() {
    let mut programs = 0usize;
    let mut counted_loops = 0usize;
    let mut diagnostics = 0usize;
    for name in SCHEMAS {
        let db = generate(&schema(name), 0.02, 7);
        let gen = UdfGenerator::default();
        for seed in 0..SEEDS_PER_SCHEMA {
            let mut rng = Rng::seed(seed);
            let u = match gen.generate(&db, &mut rng) {
                Ok(u) => u,
                Err(e) => {
                    eprintln!("udf_lint: {name}/{seed}: generator failed: {e}");
                    diagnostics += 1;
                    continue;
                }
            };
            let prog = match compile_with(&u.def, VerifyMode::Strict) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("udf_lint: {name}/{seed} {}: rejected: {e}", u.def.name);
                    diagnostics += 1;
                    continue;
                }
            };
            programs += 1;
            counted_loops += prog.simd_shape().trip_count.iter().flatten().count() / 2;
            for d in lint(&prog) {
                eprintln!("udf_lint: {name}/{seed} {}: {d}", prog.name);
                diagnostics += 1;
            }
        }
    }
    if diagnostics > 0 {
        eprintln!("udf_lint: {diagnostics} diagnostics over {programs} programs");
        std::process::exit(1);
    }
    println!(
        "udf_lint: {programs} programs verified clean ({} schemas, {counted_loops} counted loops)",
        SCHEMAS.len()
    );
}
