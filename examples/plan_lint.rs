//! Lint the generated query-plan corpus through the plan verifier and the
//! static analyses behind the verified rewrites. Exits non-zero on the
//! first diagnostic — CI runs this in both debug and `--release` alongside
//! `udf_lint` to pin the generator/verifier contract at the plan layer.
//!
//! Checks per plan (every valid UDF placement of every generated query):
//! - [`analysis::verify`] is clean (structure, schema/type inference,
//!   cardinality-annotation sanity) on the raw plan *and* after cardinality
//!   annotation;
//! - annotated estimates respect the monotone upper bounds
//!   ([`analysis::verify_bounds`]);
//! - liveness is consistent (nothing is live above the root);
//! - every constant-fold verdict is checked against the actual data: an
//!   `AlwaysTrue` predicate must match every row of its table, an
//!   `AlwaysFalse` predicate none.
//!
//! Dead-column and fold statistics are informational — generated UDFs
//! legitimately ignore parameters, and whether a predicate folds depends on
//! the drawn literal.
//!
//! ```sh
//! cargo run --release --example plan_lint
//! ```

use graceful::plan::analysis::{self, RewriteSet};
use graceful::plan::{Plan, PlanOpKind, PredFold};
use graceful::prelude::*;
use graceful::storage::Database;

const SCHEMAS: [&str; 6] = ["tpc_h", "imdb", "ssb", "airline", "baseball", "movielens"];
const SEEDS_PER_SCHEMA: u64 = 250;
const MIN_PLANS: usize = 1000;

struct Tally {
    plans: usize,
    folded_preds: usize,
    dead_params: usize,
    dead_join_lanes: usize,
}

fn lint(db: &Database, plan: &mut Plan, tally: &mut Tally) -> Vec<String> {
    let mut diags = Vec::new();
    if let Err(e) = analysis::verify(plan, db) {
        diags.push(format!("raw plan rejected: {e}"));
        return diags; // downstream analyses assume a verified plan
    }
    if let Err(e) = NaiveCard::new(db).annotate(plan) {
        diags.push(format!("cardinality annotation failed: {e}"));
        return diags;
    }
    if let Err(e) = analysis::verify(plan, db) {
        diags.push(format!("annotated plan rejected: {e}"));
    }
    if let Err(e) = analysis::verify_bounds(plan, db) {
        diags.push(format!("estimate exceeds monotone bound: {e}"));
    }

    let rw = RewriteSet::analyze(plan, db);
    if !rw.live_above[plan.root].is_empty() {
        diags
            .push(format!("liveness claims tables above the root: {:?}", rw.live_above[plan.root]));
    }
    let schemas = match analysis::infer_schemas(plan, db) {
        Ok(s) => s,
        Err(e) => {
            diags.push(format!("schema inference failed after verify passed: {e}"));
            return diags;
        }
    };
    for (i, op) in plan.ops.iter().enumerate() {
        match &op.kind {
            PlanOpKind::Filter { preds } => {
                for (k, p) in preds.iter().enumerate() {
                    let verdict = rw.fold_for(i, k);
                    if verdict == PredFold::Keep {
                        continue;
                    }
                    tally.folded_preds += 1;
                    // Soundness against the actual rows: a fold that
                    // disagrees with the data would silently change answers.
                    let want = verdict == PredFold::AlwaysTrue;
                    let t = match db.table(&p.col.table) {
                        Ok(t) => t,
                        Err(e) => {
                            diags.push(format!("op {i} pred {k}: folded on {e}"));
                            continue;
                        }
                    };
                    if let Some(row) = (0..t.num_rows()).find(|&r| p.matches(t, r) != want) {
                        diags.push(format!(
                            "op {i} pred {k} ({}): folded {verdict:?} but row {row} disagrees",
                            p.display()
                        ));
                    }
                }
            }
            PlanOpKind::UdfFilter { udf, .. } | PlanOpKind::UdfProject { udf } => {
                tally.dead_params += analysis::dead_params(db, udf).iter().filter(|&&d| d).count();
            }
            PlanOpKind::Join { .. } => {
                // Informational: output lanes whose table nothing above the
                // join reads (the executors prune these from join output).
                for c in &op.children {
                    tally.dead_join_lanes += schemas[*c]
                        .tables
                        .iter()
                        .filter(|t| !rw.live_above[i].contains(*t))
                        .count();
                }
            }
            _ => {}
        }
    }
    diags
}

fn main() {
    let qgen = QueryGenerator::default();
    let mut tally = Tally { plans: 0, folded_preds: 0, dead_params: 0, dead_join_lanes: 0 };
    let mut diagnostics = 0usize;
    for name in SCHEMAS {
        let mut db = generate(&schema(name), 0.02, 7);
        for seed in 0..SEEDS_PER_SCHEMA {
            let mut rng = Rng::seed(seed);
            let spec = match qgen.generate(&db, seed, &mut rng) {
                Ok(s) => s,
                Err(_) => continue, // rejected draw, not a corpus plan
            };
            if let Some(u) = &spec.udf {
                if graceful::udf::generator::apply_adaptations(&mut db, &u.adaptations).is_err() {
                    continue;
                }
            }
            for placement in graceful::plan::valid_placements(&spec) {
                let mut plan = match build_plan(&spec, placement) {
                    Ok(p) => p,
                    Err(e) => {
                        eprintln!(
                            "plan_lint: {name}/{seed}/{}: build failed: {e}",
                            placement.label()
                        );
                        diagnostics += 1;
                        continue;
                    }
                };
                tally.plans += 1;
                for d in lint(&db, &mut plan, &mut tally) {
                    eprintln!("plan_lint: {name}/{seed}/{}: {d}", placement.label());
                    diagnostics += 1;
                }
            }
        }
    }
    if tally.plans < MIN_PLANS {
        eprintln!("plan_lint: corpus shrank to {} plans (< {MIN_PLANS})", tally.plans);
        diagnostics += 1;
    }
    if diagnostics > 0 {
        eprintln!("plan_lint: {diagnostics} diagnostics over {} plans", tally.plans);
        std::process::exit(1);
    }
    println!(
        "plan_lint: {} plans verified clean ({} schemas; {} folded preds, \
         {} dead UDF params, {} dead join lanes — informational)",
        tally.plans,
        SCHEMAS.len(),
        tally.folded_preds,
        tally.dead_params,
        tally.dead_join_lanes
    );
}
