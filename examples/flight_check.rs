//! Validate a flight-recorder JSONL file: parse every line back into
//! [`graceful::obs::flight::FlightRecord`]s and summarize the estimator
//! quality they carry. Exits non-zero on a missing file, a malformed
//! record, or an empty recording — CI runs this over the JSONL produced
//! under `GRACEFUL_FLIGHT` to pin the on-disk format.
//!
//! ```sh
//! GRACEFUL_FLIGHT=/tmp/flight.jsonl cargo run --release --example quickstart
//! cargo run --release --example flight_check /tmp/flight.jsonl
//! ```

use graceful::obs::flight;

fn main() {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: flight_check <flight.jsonl>");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("flight_check: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let records = match flight::parse_jsonl(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("flight_check: {path}: {e}");
            std::process::exit(1);
        }
    };
    if records.is_empty() {
        eprintln!("flight_check: {path}: no flight records");
        std::process::exit(1);
    }
    let model_scored = records.iter().filter(|r| r.model_q.is_some()).count();
    let card_qs: Vec<f64> =
        records.iter().flat_map(|r| r.ops.iter().filter_map(|o| o.card_q)).collect();
    let worst = card_qs.iter().copied().fold(f64::NAN, f64::max);
    println!(
        "{path}: {} records OK ({model_scored} model-scored, {} per-op cardinality q-errors{})",
        records.len(),
        card_qs.len(),
        if card_qs.is_empty() { String::new() } else { format!(", worst {worst:.2}") }
    );
}
