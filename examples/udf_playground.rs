//! UDF playground: parse a Python-like UDF, inspect its transformed DAG
//! (the paper's Figure 2 pipeline), and watch the interpreter's cost
//! accounting react to different inputs.
//!
//! ```sh
//! cargo run --release --example udf_playground
//! ```

use graceful::prelude::*;

fn main() {
    // The UDF of the paper's Figure 2.
    let src = "\
def func(x, y):
    if x < 20:
        z = x ** 2
    else:
        z = 0
        for i in range(100):
            z = math.pow(math.sqrt(y), 2) + z
    return z
";
    let udf = parse_udf(src).expect("parses");
    println!("source:\n{}", print_udf(&udf));

    // Figure 2 steps 2-3: CFG -> transformed single-statement DAG.
    let dag =
        build_dag(&udf, &[DataType::Int, DataType::Int], DataType::Float, DagConfig::default());
    println!(
        "transformed DAG: {} nodes, {} edges, depth {}",
        dag.len(),
        dag.edges.len(),
        dag.depth()
    );
    for (i, n) in dag.nodes.iter().enumerate() {
        let extra = match n.kind {
            UdfNodeKind::Loop => format!(" nr_iter={}", n.nr_iter),
            UdfNodeKind::Branch => match &n.cond {
                Some(c) => format!(" cond: {} {} {}", c.param, c.op.symbol(), c.literal),
                None => " cond: untraceable".into(),
            },
            _ => String::new(),
        };
        println!("  [{i:>2}] {:<9} loop_part={}{}", n.kind.name(), n.loop_part, extra);
    }

    // Figure 2 step 4: hit ratios from the data distribution.
    let db = generate(&schema("imdb"), 0.05, 3);
    let paths = dag.enumerate_paths(16).unwrap();
    println!("\ncontrol paths: {}", paths.len());
    let _ = db;

    // Cost accounting: the same UDF costs wildly different amounts per row.
    let mut interp = Interpreter::default();
    println!("\nper-row interpreter cost (work units ~ ns):");
    for x in [1i64, 10, 19, 20, 50, 500] {
        let out = interp.eval(&udf, &[Value::Int(x), Value::Int(9)]).unwrap();
        println!(
            "  func({x:>3}, 9) = {:<22}  cost {:>8.0}  (loop iters: {})",
            out.value.to_string(),
            out.cost.total,
            out.cost.loop_iters
        );
    }
    println!("\nrows with x >= 20 cost ~40x more — exactly why branch hit-ratios matter.");
}
