//! Quickstart: the full GRACEFUL pipeline on one database in under a minute.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Steps: generate a database → write a UDF → build and execute a query plan
//! → train a small GRACEFUL model on a generated workload → predict the
//! query's runtime and compare against the measured truth, with an
//! `explain analyze` report of predicted vs. actual per operator.

use graceful::prelude::*;
use graceful_plan::{AggFunc, ColRef, Plan, PlanOp, PlanOpKind};
use graceful_udf::ast::CmpOp;
use graceful_udf::GeneratedUdf;
use std::sync::Arc;

fn main() {
    // 1. A database: the synthetic IMDB stand-in at small scale.
    let db = generate(&schema("imdb"), 0.1, 42);
    println!(
        "database `{}`: {} tables, {} rows total",
        db.name,
        db.tables().len(),
        db.total_rows()
    );

    // 2. A scalar UDF, written as Python-like source and parsed for real.
    let udf_src = "\
def score(production_year, kind_id):
    z = production_year - 1900
    if kind_id < 3:
        z = z * 1.5 + math.sqrt(abs(z) + 1)
    else:
        for i in range(25):
            z = z + np.log(production_year) / (abs(kind_id) + 1)
    return z
";
    let def = parse_udf(udf_src).expect("UDF parses");
    println!(
        "\nparsed UDF `{}` ({} ops, {} branches, {} loops)",
        def.name,
        def.op_count(),
        def.branch_count(),
        def.loop_count()
    );
    let udf = Arc::new(GeneratedUdf {
        source: print_udf(&def),
        def,
        table: "title".into(),
        input_columns: vec!["production_year".into(), "kind_id".into()],
        adaptations: vec![],
    });

    // 3. A query plan: SELECT COUNT(*) FROM title WHERE score(...) <= 120.
    let plan = Plan {
        ops: vec![
            PlanOp::new(PlanOpKind::Scan { table: "title".into() }, vec![]),
            PlanOp::new(
                PlanOpKind::UdfFilter { udf: udf.clone(), op: CmpOp::Le, literal: 120.0 },
                vec![0],
            ),
            PlanOp::new(PlanOpKind::Agg { func: AggFunc::CountStar, column: None }, vec![1]),
        ],
        root: 2,
    };
    // Engine configuration is programmatic: `Session::from_env()` applies
    // the documented GRACEFUL_* defaults once, `ExecOptions::new()` builds a
    // fully env-free session (e.g. `.udf_backend(UdfBackend::Vm)`). Here the
    // environment defaults are kept but per-operator profiling is forced on
    // (`GRACEFUL_PROFILE=1` would do the same).
    let session =
        ExecOptions::new().profile(true).build_with_env().expect("valid GRACEFUL_* configuration");
    let exec = session.executor(&db);
    let mut annotated = plan.clone();
    let run = exec.run_and_annotate(&mut annotated, 7).expect("plan executes");
    println!("\nexecuted plan:\n{}", annotated.explain());
    println!("measured runtime: {:.3} ms ({} rows kept)", run.runtime_ns * 1e-6, run.out_rows[1]);
    // The profile is pure observability — outside the bit-identity contract.
    if let Some(profile) = &run.profile {
        println!("\n{}", profile.explain());
    }

    // 4. Train a small model on a generated workload over the same database.
    let cfg = ScaleConfig {
        data_scale: 0.1,
        queries_per_db: 40,
        epochs: 12,
        hidden: 24,
        ..ScaleConfig::default()
    };
    let corpus = build_corpus("imdb", &cfg, 42).expect("corpus builds");
    println!("\ntraining on {} labelled queries...", corpus.queries.len());
    let model = train_graceful(std::slice::from_ref(&corpus), &cfg, Featurizer::full());
    println!("model has {} parameters", model.param_count());

    // 5. Predict the hand-written query's runtime.
    // NOTE: the model was trained on *this* database, so this is the easy
    // (seen-data) case — the paper's experiments always predict on unseen
    // databases; see `cargo bench` targets for that setup.
    let spec = QuerySpec {
        id: 999,
        database: db.name.clone(),
        base_table: "title".into(),
        joins: vec![],
        filters: vec![],
        udf: Some(udf),
        udf_usage: UdfUsage::Filter,
        udf_filter_op: CmpOp::Le,
        udf_filter_literal: 120.0,
        target_udf_selectivity: 0.5,
        agg: AggFunc::CountStar,
        agg_col: None,
    };
    let est = ActualCard::new(&corpus.db);
    let _ = ColRef::new("title", "id"); // (ColRef is part of the public plan API)
    let scored = run_with_model(&session, &corpus.db, &model, &spec, &annotated, &est, 7)
        .expect("model-scored run");
    println!(
        "\npredicted {:.3} ms vs measured {:.3} ms  (Q-error {:.2})",
        scored.predicted_ns * 1e-6,
        scored.run.runtime_ns * 1e-6,
        scored.q
    );

    // 6. `explain analyze`: predicted vs. actual per operator, q-errors per
    // row-count and work estimate, worst-estimated operator flagged. The
    // same report renders from any record parsed back out of the flight
    // recorder's JSONL.
    println!("\n{}", scored.record.render_analyze());

    // 7. With GRACEFUL_TRACE=/tmp/trace.json set, flush every span recorded
    // above (query execution, pool regions, training epochs/steps) as
    // Chrome-trace JSON — open it in chrome://tracing or ui.perfetto.dev.
    // With GRACEFUL_FLIGHT=/tmp/flight.jsonl set, flush one JSONL flight
    // record per executed query (parse them back with
    // `graceful::obs::flight::parse_jsonl`, or re-label a training corpus
    // via `labels_from_flight`).
    if graceful::obs::trace::flush().expect("trace written") {
        let path = graceful::obs::trace::configured_path().unwrap_or_default();
        println!("wrote {} trace events to {path}", graceful::obs::trace::event_count());
    }
    if graceful::obs::flight::flush().expect("flight records written") {
        let path = graceful::obs::flight::configured_path().unwrap_or_default();
        println!("wrote {} flight records to {path}", graceful::obs::flight::record_count());
    }
}
